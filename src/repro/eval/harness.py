"""The evaluation harness — the paper's Section 5 methodology.

For every benchmark stand-in:

1. build the workload and collect a training profile by reference
   execution (the paper's "execution-driven simulation"),
2. compile under each scheduling model × issue rate,
3. measure cycles with the trace-driven timing model
   (:func:`repro.arch.timing.estimate_cycles`), validated elsewhere
   against the cycle-accurate processor,
4. report speedups against the paper's base machine: "an issue rate of 1
   [with] the restricted percolation scheduling model" (Section 5.2).
"""

from __future__ import annotations

import dataclasses
import os
import statistics
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from typing import Dict, List, Optional, Tuple

from ..arch.timing import estimate_cycles
from ..cfg.basic_block import to_basic_blocks
from ..deps.reduction import (
    GENERAL,
    RESTRICTED,
    SENTINEL,
    SENTINEL_STORE,
    SpeculationPolicy,
)
from ..interp.interpreter import run_program
from ..machine.description import MachineDescription, paper_machine
from ..sched.compiler import (
    CompilationResult,
    PreparedCompilation,
    prepare_compilation,
    schedule_prepared,
)
from ..workloads.suites import ALL_NAMES, NUMERIC_NAMES, build_workload

DEFAULT_POLICIES: Tuple[SpeculationPolicy, ...] = (
    RESTRICTED,
    GENERAL,
    SENTINEL,
    SENTINEL_STORE,
)

#: Pipeline stages measured per benchmark, in execution order.  The
#: ``simulate`` stage only does work when ``SweepConfig.simulate`` > 0.
STAGES: Tuple[str, ...] = ("build", "train", "profile", "compile", "estimate", "simulate")

#: Measured serial cost of each benchmark (seconds, order of magnitude only).
#: Used to order the parallel fan-out longest-first so a big benchmark is
#: never picked up last and left running alone at the tail of the sweep.
#: Unknown benchmarks sort by the median hint.  Exact values do not matter —
#: only the relative order — so these are not regenerated per machine.
_COST_HINTS: Dict[str, float] = {
    "doduc": 0.184,
    "tomcatv": 0.168,
    "nasa7": 0.140,
    "yacc": 0.139,
    "cccp": 0.132,
    "compress": 0.128,
    "espresso": 0.122,
    "lex": 0.119,
    "tbl": 0.118,
    "eqn": 0.107,
    "cmp": 0.095,
    "xlisp": 0.088,
    "fpppp": 0.078,
    "grep": 0.076,
    "eqntott": 0.074,
    "wc": 0.058,
    "matrix300": 0.051,
}

#: Auto mode never spawns more workers than this: the fan-out unit is one
#: benchmark, and past ~8 workers the pool spends more time forking than
#: the tail-benchmark imbalance costs.
_MAX_AUTO_JOBS = 8


def _cost_hint(name: str) -> float:
    if name in _COST_HINTS:
        return _COST_HINTS[name]
    return statistics.median(_COST_HINTS.values())


def _resolve_jobs(jobs: int, n_benchmarks: int) -> int:
    """Effective worker count: ``jobs=0`` is auto, anything else literal.

    Auto picks the CPU count capped at ``_MAX_AUTO_JOBS`` and the benchmark
    count, and falls back to serial when parallelism cannot win: a single
    CPU (workers would timeshare one core and pay fork/pickle overhead on
    top) or a workload too small to amortize pool start-up.
    """
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs != 0:
        return min(jobs, max(n_benchmarks, 1))
    cpus = os.cpu_count() or 1
    if cpus <= 1 or n_benchmarks < 4:
        return 1
    return min(cpus, _MAX_AUTO_JOBS, n_benchmarks)


def _pool_init(env: Optional[dict] = None) -> None:
    """One-time per-worker set-up: gc off + a pipeline warm-up compile.

    See :func:`repro.core.parallel.pool_init` — the warm-up keeps
    pass-manager construction and lazy table initialization out of the
    first benchmark's measured stages, so per-stage timings stay
    comparable between serial and parallel runs.  ``env`` is the parent's
    ``REPRO_*`` override snapshot (:func:`repro.core.parallel.pool_env`).
    """
    from ..core.parallel import pool_init

    pool_init(env)


@dataclass(frozen=True)
class SweepConfig:
    """Knobs of one full evaluation sweep."""

    benchmarks: Tuple[str, ...] = ALL_NAMES
    issue_rates: Tuple[int, ...] = (2, 4, 8)
    policies: Tuple[SpeculationPolicy, ...] = DEFAULT_POLICIES
    unroll_factor: int = 4
    seed: int = 0
    scale: float = 1.0
    store_buffer_size: int = 8
    recovery: bool = False
    max_steps: int = 10_000_000
    #: Worker processes for the benchmark fan-out.  ``0`` = auto (CPU
    #: count, capped, with a serial fallback when the machine or workload
    #: is too small for parallelism to win).  Results are merged in
    #: ``benchmarks`` order, so any jobs value yields identical sweeps
    #: (only wall time and the recorded stage timings differ).
    jobs: int = 1
    #: Run the IR verifier after every compilation pass (``--verify-ir``).
    verify_ir: bool = False
    #: Record per-pass, per-block trace events (``--trace-passes``).
    trace_passes: bool = False
    #: Consult/populate the content-addressed on-disk compile cache
    #: (:mod:`repro.cache`).  Off by default at the library level so tests
    #: exercising the compiler always compile; the CLI turns it on (with
    #: ``--no-compile-cache`` as the escape hatch).  Results are identical
    #: either way — only the ``compile`` stage timing changes.
    compile_cache: bool = False
    #: Cache directory override (``None`` = ``$REPRO_CACHE_DIR`` or the
    #: per-user default; see :func:`repro.cache.default_cache_dir`).
    cache_dir: Optional[str] = None
    #: Cycle-accurate simulation lanes per (policy, issue rate) cell
    #: (``--simulate N``).  Each lane executes the scheduled code on the
    #: processor over a deterministically perturbed input image (lane 0 is
    #: the training image), batched through
    #: :func:`repro.arch.batchproc.run_batch`.  ``0`` (the default) skips
    #: the stage entirely; the sweep's cells and CSV are identical either
    #: way — only ``timings`` and the ``sim_*`` counters change.
    simulate: int = 0
    #: Batched executor toggle for the simulate stage (``None`` follows
    #: ``REPRO_BATCH_PROC``; ``False`` = per-cell execution).  Results are
    #: bit-identical either way.
    batch: Optional[bool] = None
    #: List-scheduler priority weights (``--weights``): ``None`` = the
    #: paper-default heuristic, a
    #: :class:`~repro.sched.priority.PriorityWeights` applies one vector
    #: to every benchmark, a :class:`~repro.sched.priority.TunedWeights`
    #: resolves per benchmark (falling back to its global vector, then the
    #: default).  Default-valued weights are normalized away before the
    #: compile-cache key is formed, so a sweep with explicit default
    #: weights shares cache entries — and produces byte-identical cells —
    #: with a weightless sweep.
    weights: Optional[object] = None
    #: Machine template for the sweep (``--machine`` / ``--machine-preset``):
    #: a :class:`~repro.machine.description.MachineDescription`, rescaled to
    #: the base machine and to every issue rate via
    #: :meth:`~repro.machine.description.MachineDescription.at_issue_width`
    #: (the template's own issue width is irrelevant).  ``None`` = the paper
    #: machine at ``store_buffer_size`` — byte-identical sweeps to passing
    #: ``paper_machine(1, store_buffer_size=...)`` explicitly.  A template
    #: overrides ``store_buffer_size`` (it carries its own).  Non-ideal
    #: timing axes feed the trace-driven estimator's penalty terms and the
    #: ``simulate`` stage's cycle simulators.
    machine: Optional[MachineDescription] = None


@dataclass
class CellResult:
    """One (benchmark, policy, issue rate) measurement."""

    benchmark: str
    numeric: bool
    policy: str
    issue_rate: int
    cycles: int
    speedup: float
    speculative: int
    checks_inserted: int
    confirms_inserted: int
    schedule_words: int


@dataclass
class SweepResult:
    config: SweepConfig
    base_cycles: Dict[str, int] = field(default_factory=dict)
    cells: Dict[Tuple[str, str, int], CellResult] = field(default_factory=dict)
    #: benchmark -> stage -> wall seconds (see STAGES).
    timings: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: benchmark -> compilation pass -> wall seconds.  A finer-grained
    #: decomposition of the ``compile`` stage (plus the verifier, when
    #: enabled), keyed by the pipeline's pass names in execution order.
    pass_timings: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: benchmark -> trace events (pass, block, wall, cpu); populated only
    #: when the sweep ran with ``trace_passes``.
    pass_trace: Dict[str, List[Dict[str, object]]] = field(default_factory=dict)
    #: benchmark -> interpreted steps (training + one profile per policy).
    interp_steps: Dict[str, int] = field(default_factory=dict)
    #: end-to-end wall seconds of run_sweep, including pool overhead.
    wall_seconds: float = 0.0
    #: benchmark -> pid of the process that evaluated it (the parent's own
    #: pid for serial runs).  Lets the timing view attribute work to
    #: workers when the sweep ran in parallel.
    worker_pids: Dict[str, int] = field(default_factory=dict)
    #: Worker count the sweep actually ran with (after jobs=0 resolution).
    effective_jobs: int = 1
    #: Simulation lanes executed / completed without a simulation error,
    #: summed over every (policy, issue rate) cell.  Zero unless the sweep
    #: ran with ``simulate > 0``.
    sim_lanes: int = 0
    sim_ok: int = 0
    #: batch-executor observability counters for the simulate stage
    #: (sharing, lockstep rows, fallbacks); see
    #: :data:`repro.arch.batchproc.BATCH_COUNTERS`.
    sim_counters: Dict[str, int] = field(default_factory=dict)
    #: batch scheduling engine observability counters accumulated during
    #: compilation (population dedup, per-block memoization); see
    #: :data:`repro.sched.batch_scheduler.SCHED_BATCH_COUNTERS`.  Empty
    #: when no stage routed through the batch engine.
    sched_counters: Dict[str, int] = field(default_factory=dict)
    #: Compile-cache statistics summed across benchmarks
    #: (hits/misses/corrupt/coalesced; see
    #: :meth:`repro.cache.CompileCache.counters`).  Empty when the sweep
    #: ran without the cache.
    cache_counters: Dict[str, int] = field(default_factory=dict)

    def stage_totals(self) -> Dict[str, float]:
        """Summed per-stage wall seconds across benchmarks.

        With ``jobs > 1`` the stages run concurrently, so totals report
        aggregate work, not elapsed wall time (``wall_seconds``).
        """
        totals = {stage: 0.0 for stage in STAGES}
        for per_stage in self.timings.values():
            for stage, seconds in per_stage.items():
                totals[stage] = totals.get(stage, 0.0) + seconds
        return totals

    def total_steps(self) -> int:
        return sum(self.interp_steps.values())

    def pass_totals(self) -> Dict[str, float]:
        """Summed per-pass wall seconds across benchmarks, execution order."""
        totals: Dict[str, float] = {}
        for per_pass in self.pass_timings.values():
            for name, seconds in per_pass.items():
                totals[name] = totals.get(name, 0.0) + seconds
        return totals

    def stage_maxima(self) -> Dict[str, float]:
        """Per-stage wall seconds of the busiest worker.

        Each worker's stage seconds are summed over the benchmarks it
        evaluated; the maximum across workers bounds that stage's
        contribution to elapsed wall time.  For serial runs (one pid) this
        equals :meth:`stage_totals`.
        """
        per_worker: Dict[int, Dict[str, float]] = {}
        for name, per_stage in self.timings.items():
            pid = self.worker_pids.get(name, 0)
            worker = per_worker.setdefault(pid, {stage: 0.0 for stage in STAGES})
            for stage, seconds in per_stage.items():
                worker[stage] = worker.get(stage, 0.0) + seconds
        maxima = {stage: 0.0 for stage in STAGES}
        for worker in per_worker.values():
            for stage, seconds in worker.items():
                if seconds > maxima.get(stage, 0.0):
                    maxima[stage] = seconds
        return maxima

    def render_timings(self) -> str:
        """Per-stage timing table (the ``--timings`` CLI view).

        With more than one worker, a ``max-worker`` column reports each
        stage's busiest-worker seconds next to the summed total: the sum
        measures aggregate work, the max approximates the stage's wall
        contribution.
        """
        totals = self.stage_totals()
        parallel = len(set(self.worker_pids.values())) > 1
        if parallel:
            maxima = self.stage_maxima()
            lines = ["stage      seconds  max-worker"]
            for stage in STAGES:
                lines.append(f"{stage:<10} {totals[stage]:8.3f}  {maxima[stage]:8.3f}")
            lines.append(f"{'(sum)':<10} {sum(totals.values()):8.3f}")
        else:
            lines = ["stage      seconds"]
            for stage in STAGES:
                lines.append(f"{stage:<10} {totals[stage]:8.3f}")
            lines.append(f"{'(sum)':<10} {sum(totals.values()):8.3f}")
        lines.append(f"{'wall':<10} {self.wall_seconds:8.3f}")
        if self.sim_lanes:
            rate = self.sim_lanes / totals["simulate"] if totals["simulate"] else 0.0
            lines.append(
                f"simulated {self.sim_lanes} lanes ({self.sim_ok} clean), "
                f"{rate:,.0f} cells/sec"
            )
        steps = self.total_steps()
        interp_seconds = totals["train"] + totals["profile"]
        if steps and interp_seconds > 0:
            lines.append(f"interpreted {steps} steps, {steps / interp_seconds:,.0f} steps/sec")
        if self.sched_counters:
            counters = self.sched_counters
            lines.append(
                "batch scheduling: "
                f"{counters.get('candidates', 0)} candidates, "
                f"{counters.get('unique_schedules', 0)} unique schedules, "
                f"{counters.get('dedup_hits', 0)} dedup hits, "
                f"{counters.get('block_schedules', 0)} block schedules, "
                f"{counters.get('block_memo_hits', 0)} block memo hits"
            )
        if self.cache_counters:
            counters = self.cache_counters
            lines.append(
                "compile cache: "
                f"{counters.get('hits', 0)} hits, "
                f"{counters.get('misses', 0)} misses, "
                f"{counters.get('corrupt', 0)} corrupt, "
                f"{counters.get('coalesced', 0)} coalesced"
            )
        pass_totals = self.pass_totals()
        if pass_totals:
            width = max(14, max(len(name) for name in pass_totals))
            lines.append("")
            lines.append(f"{'pass':<{width}} seconds")
            for name, seconds in pass_totals.items():
                lines.append(f"{name:<{width}} {seconds:7.3f}")
            lines.append(f"{'(compile total)':<{width}} {sum(pass_totals.values()):7.3f}")
        return "\n".join(lines)

    def cell(self, benchmark: str, policy: str, issue_rate: int) -> CellResult:
        return self.cells[(benchmark, policy, issue_rate)]

    def speedup(self, benchmark: str, policy: str, issue_rate: int) -> float:
        return self.cell(benchmark, policy, issue_rate).speedup

    def improvement(
        self, benchmark: str, over: str, policy: str, issue_rate: int
    ) -> float:
        """Fractional improvement of ``policy`` over ``over``: S/R - 1 etc."""
        return (
            self.speedup(benchmark, policy, issue_rate)
            / self.speedup(benchmark, over, issue_rate)
            - 1.0
        )

    def average_improvement(
        self,
        over: str,
        policy: str,
        issue_rate: int,
        numeric: Optional[bool] = None,
    ) -> float:
        """Mean improvement across benchmarks (paper's "average of 57%")."""
        values = [
            self.improvement(cell.benchmark, over, policy, issue_rate)
            for cell in self.cells.values()
            if cell.policy == policy
            and cell.issue_rate == issue_rate
            and (numeric is None or cell.numeric == numeric)
        ]
        if not values:
            raise ValueError("no cells match the average query")
        return statistics.mean(values)

    def benchmarks(self) -> List[str]:
        return list(dict.fromkeys(cell.benchmark for cell in self.cells.values()))

    def to_csv(self) -> str:
        """The full sweep as CSV (one row per benchmark × policy × rate),
        for plotting outside this repository."""
        lines = [
            "benchmark,numeric,policy,issue_rate,cycles,speedup,"
            "speculative,checks,confirms,schedule_words"
        ]
        for key in sorted(self.cells):
            cell = self.cells[key]
            lines.append(
                f"{cell.benchmark},{int(cell.numeric)},{cell.policy},"
                f"{cell.issue_rate},{cell.cycles},{cell.speedup:.4f},"
                f"{cell.speculative},{cell.checks_inserted},"
                f"{cell.confirms_inserted},{cell.schedule_words}"
            )
        return "\n".join(lines)


@dataclass
class _BenchmarkShard:
    """One benchmark's measurements, ready to merge into a SweepResult."""

    name: str
    base_cycles: int
    cells: List[CellResult]
    timings: Dict[str, float]
    steps: int
    pid: int = 0
    pass_timings: Dict[str, float] = field(default_factory=dict)
    pass_trace: List[Dict[str, object]] = field(default_factory=list)
    sim_lanes: int = 0
    sim_ok: int = 0
    sim_counters: Dict[str, int] = field(default_factory=dict)
    sched_counters: Dict[str, int] = field(default_factory=dict)
    cache_counters: Dict[str, int] = field(default_factory=dict)


def _lane_memory(workload, lane: int):
    """Deterministic input image for one simulation lane.

    Lane 0 is the training image; lane ``k`` nudges every float in the
    image by a tiny lane-dependent amount.  Floats feed the numeric
    kernels' arithmetic but not their counted-loop exits, so FP lanes
    produce different results over *identical* control flow — the shape
    the lockstep executor vectorizes.  Integer data is left alone (the
    non-numeric stand-ins branch on it, and diverged lanes would only
    spill out of lockstep); their lanes are identical images, which the
    batch executor detects and coalesces into one shared run.  The nudge
    cannot introduce traps: the workloads contain no division and the
    generator's inits are finite.
    """
    memory = workload.make_memory()
    if lane == 0:
        return memory
    for plan in workload.arrays:
        for index in range(plan.length):
            address = plan.base + index
            value, tag = memory.peek_tagged(address)
            if isinstance(value, float):
                memory.poke_tagged(address, value + lane * 2.0**-16, tag)
    return memory


def _resolve_weights(weights, benchmark: str):
    """The effective non-default PriorityWeights for one benchmark.

    Accepts ``None``, a single :class:`PriorityWeights`, or a
    :class:`TunedWeights` file (resolved per benchmark).  Returns ``None``
    whenever the resolved vector equals the paper default, so downstream
    code — ``schedule_prepared`` and the compile-cache key — takes the
    exact pre-weights path and keys.
    """
    if weights is None:
        return None
    from ..sched.priority import TunedWeights

    if isinstance(weights, TunedWeights):
        weights = weights.resolve(benchmark)
    return None if weights.is_default else weights


def _evaluate_benchmark(config: SweepConfig, name: str) -> _BenchmarkShard:
    """Measure one benchmark under every policy × issue rate.

    The machine-independent compilation stages (superblock formation,
    renaming, dependence graphs) depend on the policy only through its
    ``sentinels`` flag (see :func:`schedule_prepared`), so they are
    prepared once per flag value and reused across the policies and issue
    rates sharing it; likewise one reference profile run serves them all
    (the superblock-form program, and hence its execution profile, is
    identical within the group).  Results are identical to compiling each
    cell from scratch — ``tests/eval/test_parallel_sweep.py`` pins this.
    """
    from ..sched import batch_scheduler

    timings = {stage: 0.0 for stage in STAGES}
    steps = 0
    clock = time.perf_counter
    sched_before = batch_scheduler.counters_snapshot()
    template = config.machine
    if template is None:
        template = paper_machine(1, store_buffer_size=config.store_buffer_size)
    base_machine = template.at_issue_width(1)
    weights = _resolve_weights(config.weights, name)

    start = clock()
    workload = build_workload(name, seed=config.seed, scale=config.scale)
    basic = to_basic_blocks(workload.program)
    timings["build"] = clock() - start

    start = clock()
    training = run_program(
        basic, memory=workload.make_memory(), max_steps=config.max_steps
    )
    timings["train"] = clock() - start
    steps += training.steps
    if not training.halted:
        raise RuntimeError(f"{name}: training run did not halt")

    prepared: Dict[bool, PreparedCompilation] = {}
    profiles: Dict[bool, "object"] = {}

    # -- compile cache -------------------------------------------------
    # One cache entry per front-end sharing group (sentinels flag): every
    # CompilationResult of the group is pickled in a single bundle, so the
    # results keep sharing one superblock program — and hence one uid
    # space — after a round trip.  That keeps the uid-keyed execution
    # profile consistent across the group's cells, exactly as in a fresh
    # compile.  The key encodes the full cell plan of the group, so a
    # bundle either covers every cell or misses entirely: cached and
    # freshly-compiled results (with incompatible uid spaces) never mix
    # within a group.
    base_cell = (RESTRICTED, base_machine)
    plan: List[Tuple[SpeculationPolicy, "object"]] = [base_cell]
    for policy in config.policies:
        for issue_rate in config.issue_rates:
            plan.append((policy, template.at_issue_width(issue_rate)))
    group_plan: Dict[bool, List[Tuple[SpeculationPolicy, "object"]]] = {}
    for policy, machine in plan:
        group_plan.setdefault(policy.sentinels, []).append((policy, machine))

    cache = None
    bundles: Dict[bool, Dict[Tuple[str, int], CompilationResult]] = {}
    pending: Dict[bool, Dict[Tuple[str, int], CompilationResult]] = {}
    group_keys: Dict[bool, str] = {}
    # --verify-ir and --trace-passes exist to observe the compilation
    # itself; serving a cached schedule would silently skip the thing
    # being observed, so those modes always compile.
    if config.compile_cache and not (config.verify_ir or config.trace_passes):
        from ..cache import (
            CompileCache,
            canonical_machine,
            canonical_policy,
            canonical_profile,
            canonical_program,
            pipeline_pass_names,
        )

        cache = CompileCache(root=config.cache_dir)
        start = clock()
        program_text = canonical_program(basic)
        profile_text = canonical_profile(basic, training.profile)
        passes = ",".join(pipeline_pass_names())
        # Non-default weights change the schedules, so they must change
        # the key; the default path appends nothing, keeping every
        # pre-weights cache entry reachable (cold-cache compatibility).
        weight_parts: Tuple[str, ...] = ()
        if weights is not None:
            from ..cache import canonical_weights

            weight_parts = (f"weights={canonical_weights(weights)}",)
        for flag, group_cells in group_plan.items():
            descriptor = ";".join(
                f"{canonical_policy(p)}@{canonical_machine(m)}"
                for p, m in group_cells
            )
            group_keys[flag] = cache.key(
                program_text,
                profile_text,
                f"unroll={config.unroll_factor}",
                f"recovery={config.recovery}",
                f"passes={passes}",
                descriptor,
                *weight_parts,
            )
            bundle = cache.get(group_keys[flag])
            if isinstance(bundle, dict):
                bundles[flag] = bundle
        timings["compile"] += clock() - start

    def comp_of(policy: SpeculationPolicy, machine) -> CompilationResult:
        cell_key = (policy.name, machine.issue_width)
        bundle = bundles.get(policy.sentinels)
        if bundle is not None:
            return bundle[cell_key]
        prep = prepare(policy)
        start = clock()
        comp = schedule_prepared(prep, machine, policy=policy, weights=weights)
        timings["compile"] += clock() - start
        if cache is not None:
            # Bundle a slim copy: per-block scheduling artifacts (private
            # dependence graphs, per-block stats) are debug output the
            # sweep never reads, and they dominate the pickle size.
            slim = dataclasses.replace(comp, block_results={})
            pending.setdefault(policy.sentinels, {})[cell_key] = slim
        return comp

    def prepare(policy: SpeculationPolicy) -> PreparedCompilation:
        if policy.sentinels not in prepared:
            start = clock()
            prepared[policy.sentinels] = prepare_compilation(
                basic,
                training.profile,
                policy,
                unroll_factor=config.unroll_factor,
                recovery=config.recovery,
                verify_ir=config.verify_ir,
                trace_passes=config.trace_passes,
            )
            timings["compile"] += clock() - start
        return prepared[policy.sentinels]

    def profile_of(policy: SpeculationPolicy, comp: CompilationResult):
        # The superblock-form program (and its uids) is machine-independent
        # and shared within a sentinels group, so one profile serves every
        # (policy, issue rate) of the group.
        if policy.sentinels not in profiles:
            nonlocal steps
            start = clock()
            result = run_program(
                comp.superblock_program,
                memory=workload.make_memory(),
                max_steps=config.max_steps,
            )
            timings["profile"] += clock() - start
            steps += result.steps
            if not result.halted:
                raise RuntimeError(f"{name}: superblock program did not halt")
            profiles[policy.sentinels] = result.profile
        return profiles[policy.sentinels]

    base_comp = comp_of(RESTRICTED, base_machine)
    base_profile = profile_of(RESTRICTED, base_comp)
    start = clock()
    base_cycles = estimate_cycles(
        base_comp.scheduled, base_profile, base_machine
    ).total_cycles
    timings["estimate"] += clock() - start

    sim_lanes = 0
    sim_ok = 0
    sim_counters: Dict[str, int] = {}
    if config.simulate:
        from ..arch.batchproc import counters_snapshot

        counters_before = counters_snapshot()

    cells: List[CellResult] = []
    for policy in config.policies:
        for issue_rate in config.issue_rates:
            machine = template.at_issue_width(issue_rate)
            comp = comp_of(policy, machine)
            profile = profile_of(policy, comp)
            if config.simulate:
                # Execute the cell's schedule cycle-accurately over the
                # lane matrix, batched (lockstep + fallback) unless the
                # batch executor is disabled.  Runs against this cell's
                # ``comp`` before the loop compiles the next one, per the
                # decode-cache invalidation contract.
                from ..arch.batchproc import BatchCell, run_batch
                from ..arch.exceptions import ABORT, SimulationError

                start = clock()
                sim_cells = [
                    BatchCell(
                        comp.scheduled,
                        machine,
                        _lane_memory(workload, lane),
                        on_exception=ABORT,
                    )
                    for lane in range(config.simulate)
                ]
                outs = run_batch(sim_cells, batch=config.batch)
                sim_lanes += len(outs)
                sim_ok += sum(
                    1 for out in outs if not isinstance(out, SimulationError)
                )
                timings["simulate"] += clock() - start
            start = clock()
            cycles = estimate_cycles(comp.scheduled, profile, machine).total_cycles
            timings["estimate"] += clock() - start
            cells.append(
                CellResult(
                    benchmark=name,
                    numeric=name in NUMERIC_NAMES,
                    policy=policy.name,
                    issue_rate=issue_rate,
                    cycles=cycles,
                    speedup=base_cycles / cycles,
                    speculative=comp.stats.speculative,
                    checks_inserted=comp.stats.checks_inserted,
                    confirms_inserted=comp.stats.confirms_inserted,
                    schedule_words=comp.stats.schedule_words,
                )
            )
    if cache is not None and pending:
        start = clock()
        for flag, bundle in pending.items():
            if flag not in bundles:
                cache.put(group_keys[flag], bundle)
        timings["compile"] += clock() - start
    if config.simulate:
        after = counters_snapshot()
        sim_counters = {
            key: after[key] - counters_before.get(key, 0)
            for key in after
            if after[key] != counters_before.get(key, 0)
        }
    pass_timings: Dict[str, float] = {}
    pass_trace: List[Dict[str, object]] = []
    for group in prepared.values():
        for pass_name, seconds in group.pass_seconds().items():
            pass_timings[pass_name] = pass_timings.get(pass_name, 0.0) + seconds
        for event in group.context.trace:
            pass_trace.append(
                {
                    "pass": event.pass_name,
                    "block": event.block,
                    "wall_seconds": event.wall_seconds,
                    "cpu_seconds": event.cpu_seconds,
                }
            )
    return _BenchmarkShard(
        name=name,
        base_cycles=base_cycles,
        cells=cells,
        timings=timings,
        steps=steps,
        pid=os.getpid(),
        pass_timings=pass_timings,
        pass_trace=pass_trace,
        sim_lanes=sim_lanes,
        sim_ok=sim_ok,
        sim_counters=sim_counters,
        sched_counters={
            key: value - sched_before.get(key, 0)
            for key, value in batch_scheduler.counters_snapshot().items()
            if value != sched_before.get(key, 0)
        },
        cache_counters=cache.counters() if cache is not None else {},
    )


def run_sweep(config: SweepConfig = SweepConfig()) -> SweepResult:
    """Run the full model × issue-rate evaluation (Figures 4 and 5).

    With more than one effective job (``config.jobs``; 0 = auto),
    benchmarks fan out over a process pool longest-first so the expensive
    ones never run alone at the tail.  The per-benchmark shards are merged
    back in configuration order, so the resulting sweep — cells, base
    cycles, CSV — is byte-identical for any jobs value.
    """
    wall_start = time.perf_counter()
    names = list(config.benchmarks)
    jobs = _resolve_jobs(config.jobs, len(names))
    if jobs > 1 and len(names) > 1:
        # Longest-first submission with chunksize 1: each worker pulls the
        # next-biggest remaining benchmark, which minimizes the straggler
        # tail.  Chunking larger than 1 would re-introduce head-of-line
        # blocking behind the big early benchmarks.
        from ..core.parallel import pool_env

        ordered = sorted(names, key=lambda n: (-_cost_hint(n), names.index(n)))
        with ProcessPoolExecutor(
            max_workers=jobs, initializer=_pool_init, initargs=(pool_env(),)
        ) as pool:
            shards = list(
                pool.map(partial(_evaluate_benchmark, config), ordered, chunksize=1)
            )
        by_name = {shard.name: shard for shard in shards}
        shards = [by_name[name] for name in names]
    else:
        jobs = 1
        shards = [_evaluate_benchmark(config, name) for name in names]

    sweep = SweepResult(config=config, effective_jobs=jobs)
    for shard in shards:
        sweep.base_cycles[shard.name] = shard.base_cycles
        for cell in shard.cells:
            sweep.cells[(cell.benchmark, cell.policy, cell.issue_rate)] = cell
        sweep.timings[shard.name] = shard.timings
        sweep.pass_timings[shard.name] = shard.pass_timings
        if shard.pass_trace:
            sweep.pass_trace[shard.name] = shard.pass_trace
        sweep.interp_steps[shard.name] = shard.steps
        sweep.worker_pids[shard.name] = shard.pid
        sweep.sim_lanes += shard.sim_lanes
        sweep.sim_ok += shard.sim_ok
        for key, count in shard.sim_counters.items():
            sweep.sim_counters[key] = sweep.sim_counters.get(key, 0) + count
        for key, count in shard.sched_counters.items():
            sweep.sched_counters[key] = sweep.sched_counters.get(key, 0) + count
        for key, count in shard.cache_counters.items():
            sweep.cache_counters[key] = sweep.cache_counters.get(key, 0) + count
    sweep.wall_seconds = time.perf_counter() - wall_start
    return sweep
