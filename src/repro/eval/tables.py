"""Regeneration of the paper's Tables 1, 2 and 3 from the implementation.

Rather than printing hard-coded strings, each renderer *exercises* the
corresponding mechanism — :func:`repro.core.tags.apply_table1` for Table 1,
a live :class:`repro.arch.store_buffer.StoreBuffer` for Table 2, and the
machine description's latency table for Table 3 — so the printed rows are
guaranteed to reflect what the simulator actually does.
"""

from __future__ import annotations

from typing import List

from ..arch.exceptions import Trap, TrapKind
from ..arch.memory import Memory
from ..arch.store_buffer import StoreBuffer
from ..core.tags import TABLE1_ROWS, TaggedValue, apply_table1
from ..isa.opcodes import LatClass
from ..machine.description import BASE_MACHINE

_SAMPLE_PC = 40  # "pc of I" in the rendered rows
_SAMPLE_SRC_PC = 17  # PC propagated by a tagged source
_SAMPLE_RESULT = 99  # "result of I"


def render_table1() -> str:
    """Exception detection with sentinel scheduling (paper Table 1)."""
    header = (
        f"{'spec':<5}{'src tag':<8}{'excepts':<8}"
        f"{'dest.tag':<9}{'dest.data':<12}{'signal':<24}"
    )
    lines = [
        "Table 1: exception detection with sentinel scheduling",
        header,
        "-" * len(header),
    ]
    for spec, tagged, excepts in TABLE1_ROWS:
        sources = [TaggedValue(_SAMPLE_SRC_PC, True)] if tagged else [
            TaggedValue(5, False)
        ]
        outcome = apply_table1(spec, sources, excepts, _SAMPLE_PC, _SAMPLE_RESULT)
        if outcome.signal_pc is not None:
            signal = f"yes, except. pc = {'pc of I' if outcome.signal_own else 'src.data'}"
        else:
            signal = "none"
        if not outcome.writes_dest:
            data = "(unchanged)"
        elif outcome.dest_tag and outcome.dest_data == _SAMPLE_PC:
            data = "pc of I"
        elif outcome.dest_tag:
            data = "src.data"
        else:
            data = "result of I"
        lines.append(
            f"{int(spec):<5}{int(tagged):<8}{int(excepts):<8}"
            f"{int(outcome.writes_dest and outcome.dest_tag):<9}{data:<12}{signal:<24}"
        )
    return "\n".join(lines)


def render_table2() -> str:
    """Insertion of a store into the store buffer (paper Table 2)."""
    header = (
        f"{'spec':<5}{'src tag':<8}{'excepts':<8}{'action':<58}"
    )
    lines = [
        "Table 2: insertion of a store into the store buffer",
        header,
        "-" * len(header),
    ]
    for spec, tagged, excepts in TABLE1_ROWS:
        memory = Memory()
        buffer = StoreBuffer(4, memory)
        sources = [TaggedValue(_SAMPLE_SRC_PC, True)] if tagged else [
            TaggedValue(5, False)
        ]
        trap = Trap(TrapKind.PAGE_FAULT, address=100) if excepts else None
        outcome = buffer.insert(spec, sources, 100, 7, trap, _SAMPLE_PC)
        if not outcome.inserted:
            if outcome.signal_own:
                action = "signal exception, report pc = pc of I (no insertion)"
            else:
                action = "signal exception, report pc = src.data (no insertion)"
        else:
            entry = buffer.entries[-1]
            kind = "confirmed" if entry.confirmed else "pending"
            action = f"insert {kind} entry"
            if entry.exc_tag:
                origin = "pc of I" if entry.exc_pc == _SAMPLE_PC else "src.data"
                action += f", exception tag set, exception pc = {origin}"
        lines.append(
            f"{int(spec):<5}{int(tagged):<8}{int(excepts):<8}{action:<58}"
        )
    return "\n".join(lines)


def render_table3() -> str:
    """Instruction latencies: the base machine's table (paper Table 3)."""
    order = [
        (LatClass.INT_ALU, "Int ALU"),
        (LatClass.INT_MUL, "Int multiply"),
        (LatClass.INT_DIV, "Int divide"),
        (LatClass.BRANCH, "branch"),
        (LatClass.LOAD, "memory load"),
        (LatClass.STORE, "memory store"),
        (LatClass.FP_ALU, "FP ALU"),
        (LatClass.FP_CVT, "FP conversion"),
        (LatClass.FP_MUL, "FP multiply"),
        (LatClass.FP_DIV, "FP divide"),
    ]
    lines = ["Table 3: instruction latencies", f"{'Function':<16}{'Latency':<8}"]
    latencies = BASE_MACHINE.latencies
    for cls, label in order:
        lines.append(f"{label:<16}{latencies[cls]:<8}")
    return "\n".join(lines)


def all_tables() -> List[str]:
    return [render_table1(), render_table2(), render_table3()]
