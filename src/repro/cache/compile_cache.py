"""Content-addressed on-disk cache for compilation results.

Repeated sweeps, fuzz replays, and CI jobs compile the same programs
under the same policies and machines over and over; the schedule is a
pure function of those inputs, so it can be memoized on disk.  Entries
are *content-addressed*: the file name is a SHA-256 digest over every
input that can influence the produced schedule —

- the canonical program text (labels + printed instructions; deliberately
  **not** instruction uids, which are process-global counters and differ
  from run to run for identical programs),
- the training profile, canonicalized the same way (block labels and
  instruction positions instead of uids),
- the speculation policy identity (name and all flags),
- the machine description(s): issue width, latency table, store buffer
  size, per-cycle limits,
- the compilation options (unroll factor, recovery) and the pipeline's
  pass list,
- :data:`CACHE_VERSION_SALT`, bumped whenever a pipeline or ISA change
  alters what any existing key should map to.

Because the key covers the full input content, entries never go stale by
content — only by code change, which the salt captures.  Values are
pickled Python objects (the harness stores one *group bundle* — every
``CompilationResult`` of a front-end sharing group in a single pickle, so
the results keep sharing one superblock program and one uid space after
a round trip; see :mod:`repro.eval.harness`).

The cache is crash- and corruption-tolerant by construction: writes go
to a temporary file in the same directory and are published with an
atomic :func:`os.replace`, so readers never observe a partial entry, and
:meth:`CompileCache.get` treats *any* failure to read or unpickle an
entry as a miss (deleting the offender) — a corrupted cache can cost a
recompile, never a wrong result or a failed run.  Such reads are not
silent, though: they increment a ``corrupt`` counter alongside the
hit/miss tallies (:meth:`CompileCache.counters`), surfaced by the sweep
``--timings`` table and the service ``/v1/metrics``, so cache damage is
observable even when it is harmless.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Iterable, List, Optional, Tuple

__all__ = [
    "CACHE_VERSION_SALT",
    "CompileCache",
    "canonical_machine",
    "canonical_profile",
    "canonical_program",
    "canonical_weights",
    "default_cache_dir",
    "digest_parts",
]

#: Version salt mixed into every cache key.  Bump the trailing number on
#: any change to the compilation pipeline, the scheduler, or the ISA that
#: alters the schedule produced for an existing input — or the pickled
#: layout of the cached objects: old entries then stop matching any key
#: and die by attrition.  (v2: Instruction grew a memoized-operands slot.)
CACHE_VERSION_SALT = "repro-compile-v2"

#: Environment override for the cache directory (highest precedence after
#: an explicit constructor argument).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """Resolve the cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-sentinel" / "compile"


def digest_parts(*parts: str) -> str:
    """SHA-256 over a sequence of strings with unambiguous framing."""
    h = hashlib.sha256()
    for part in parts:
        data = part.encode("utf-8")
        h.update(str(len(data)).encode("ascii"))
        h.update(b":")
        h.update(data)
    return h.hexdigest()


def canonical_program(program) -> str:
    """Deterministic text of a program, independent of instruction uids.

    Uids are allocated from a process-global counter, so two identical
    programs built in different runs (or by different pool workers) carry
    different uids; the printed form without uids is what actually
    determines the schedule shape.
    """
    from ..isa.printer import format_program

    return format_program(program, show_uids=False)


def canonical_profile(program, profile) -> str:
    """Deterministic text of an execution profile for ``program``.

    Block visit counts are keyed by label (stable); branch-taken counts
    are uid-keyed and are re-expressed positionally as
    ``(block label, instruction index, taken)``.
    """
    lines: List[str] = []
    for block in program.blocks:
        lines.append(f"B {block.label} {profile.block_visits.get(block.label, 0)}")
        for idx, instr in enumerate(block.instrs):
            taken = profile.branch_taken.get(instr.uid, 0)
            if taken:
                lines.append(f"T {block.label} {idx} {taken}")
    return "\n".join(lines)


def canonical_machine(machine) -> str:
    """Deterministic text of a machine description (all schedule inputs).

    The microarchitectural timing axes (fetch / predictor / caches) are
    appended *only when non-default*: they do not change what the
    compiler produces today, but they are part of the machine's identity
    and future passes may consult them.  Default-normalization keeps
    every paper-machine key byte-identical to the pre-timing-layer era,
    so existing cache entries stay reachable without a salt bump
    (``tests/cache/test_machine_keys.py`` pins the default string).
    """
    latencies = ",".join(
        f"{cls.value}={lat}" for cls, lat in sorted(machine.latencies.items(), key=lambda kv: kv[0].value)
    )
    text = (
        f"issue={machine.issue_width};lat={latencies};"
        f"sbuf={machine.store_buffer_size};"
        f"br/cyc={machine.branches_per_cycle};mem/cyc={machine.memory_ops_per_cycle}"
    )
    fetch = machine.fetch
    if not fetch.is_ideal:
        text += (
            f";fetch=variable,width={machine.fetch_width},"
            f"break={fetch.taken_branch_break}"
        )
    predictor = machine.predictor
    if not predictor.is_ideal:
        text += f";pred={predictor.kind},pen={predictor.mispredict_penalty}"
        if predictor.kind == "bimodal":
            text += f",table={predictor.table_size}"
    for label, cache in (("icache", machine.icache), ("dcache", machine.dcache)):
        if not cache.is_ideal:
            text += (
                f";{label}={cache.kind},lines={cache.lines},"
                f"line={cache.line_size},miss={cache.miss_penalty}"
            )
    return text


def canonical_policy(policy) -> str:
    """Deterministic text of a speculation policy (name and all flags)."""
    flags = ",".join(
        f"{name}={getattr(policy, name)!r}"
        for name in sorted(vars(policy))
    )
    return f"{policy.name}[{flags}]"


def canonical_weights(weights) -> str:
    """Deterministic text of a list-scheduler priority-weight vector.

    ``None`` (the paper-default heuristic) canonicalizes to the default
    vector's text, so explicitly passing :data:`~repro.sched.priority.
    DEFAULT_WEIGHTS` and passing nothing hash identically.  Callers that
    need *key compatibility* with pre-weights cache entries must instead
    omit the weights part entirely when ``weights.is_default`` — see
    :mod:`repro.eval.harness`.
    """
    from ..sched.priority import DEFAULT_WEIGHTS

    if weights is None:
        weights = DEFAULT_WEIGHTS
    return weights.canonical()


def pipeline_pass_names() -> Tuple[str, ...]:
    """Names of the default compilation pipeline's passes, in order."""
    from ..pipeline.passes import backend_pipeline, default_pipeline

    return tuple(p.name for p in default_pipeline()) + tuple(
        p.name for p in backend_pipeline()
    )


class CompileCache:
    """A directory of content-addressed pickled entries.

    ``root=None`` resolves via :func:`default_cache_dir` (which honours
    ``$REPRO_CACHE_DIR``).  ``salt`` defaults to
    :data:`CACHE_VERSION_SALT`; it participates in every key *and* is
    stored inside each entry, so entries written under another salt are
    unreachable by key and rejected on read even if a key collides.
    """

    def __init__(
        self,
        root: Optional[os.PathLike] = None,
        salt: str = CACHE_VERSION_SALT,
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.salt = salt
        self.hits = 0
        self.misses = 0
        #: Misses caused by an unreadable entry (truncated pickle, salt
        #: mismatch, unpicklable content) rather than a plain absence.
        #: Every corrupt read also counts as a miss; a growing corrupt
        #: count under a stable salt means something is damaging the
        #: cache directory, which a silent miss would hide.
        self.corrupt = 0
        #: Requests that never reached disk because they latched onto an
        #: identical in-flight compile (single-flight coalescing).  The
        #: cache itself never increments this — owners of a single-flight
        #: map (the service layer) do — but it lives here so every
        #: consumer of cache statistics sees one consistent dict.
        self.coalesced = 0

    def counters(self) -> dict:
        """All cache statistics as a plain JSON-ready dict."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "coalesced": self.coalesced,
        }

    # -- keys ---------------------------------------------------------

    def key(self, *parts: str) -> str:
        """Digest ``parts`` together with this cache's version salt."""
        return digest_parts(self.salt, *parts)

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    # -- entries ------------------------------------------------------

    def get(self, key: str):
        """The cached value for ``key``, or ``None``.

        Any failure — missing file, truncated or corrupted pickle, salt
        mismatch, unpicklable content — is a miss; a damaged entry is
        deleted so the recompiled value can replace it.
        """
        path = self.path_for(key)
        try:
            with open(path, "rb") as fh:
                salt, value = pickle.load(fh)
            if salt != self.salt:
                raise ValueError(f"cache entry salt {salt!r} != {self.salt!r}")
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            try:
                os.unlink(path)
            except OSError:
                pass
            self.misses += 1
            self.corrupt += 1
            return None
        self.hits += 1
        return value

    def put(self, key: str, value) -> Optional[Path]:
        """Atomically publish ``value`` under ``key``.

        Written via a same-directory temporary file and
        :func:`os.replace`, so concurrent readers and writers only ever
        see complete entries (concurrent writers of one key race
        harmlessly: both write the same content).  I/O errors are
        swallowed — a read-only or full disk degrades to an always-miss
        cache, never a failed compile.
        """
        path = self.path_for(key)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump((self.salt, value), fh, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return None
        return path

    # -- maintenance --------------------------------------------------

    def entries(self) -> Iterable[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*.pkl"))

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.entries():
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        return removed
