"""Content-addressed on-disk caching of compilation results."""

from .compile_cache import (
    CACHE_DIR_ENV,
    CACHE_VERSION_SALT,
    CompileCache,
    canonical_machine,
    canonical_policy,
    canonical_profile,
    canonical_program,
    canonical_weights,
    default_cache_dir,
    digest_parts,
    pipeline_pass_names,
)

__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_VERSION_SALT",
    "CompileCache",
    "canonical_machine",
    "canonical_policy",
    "canonical_profile",
    "canonical_program",
    "canonical_weights",
    "default_cache_dir",
    "digest_parts",
    "pipeline_pass_names",
]
