"""Store buffer with probationary entries — Section 4.1 / Table 2.

A conventional store buffer sits between the CPU and the data cache: it
accepts one entry per executed store (translating the address, and hence
detecting exceptions, at insertion), forwards data to matching loads, and
releases head entries to the cache in FIFO order.

To support **speculative stores** each entry gains a confirmation bit, an
exception tag and an exception PC:

* a non-speculative store inserts a *confirmed* entry (or signals
  immediately on translation fault / tagged source — the store acting as a
  sentinel),
* a speculative store always inserts a *probationary* entry, recording any
  fault or propagated tag in the entry instead of signalling,
* ``confirm_store(index)`` confirms the ``index``-th valid entry counting
  from the tail and reports its recorded exception, if any,
* a mispredicted branch cancels **all** probationary entries,
* a probationary entry at the head blocks release; a probationary entry
  with its exception tag set is excluded from load forwarding so the load
  can re-execute independently of the faulty store (Section 4.1).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Sequence, Union

from ..core.tags import TaggedValue, first_tagged
from .exceptions import SimulationError, Trap
from .memory import Memory

Value = Union[int, float]


@dataclass
class StoreBufferEntry:
    address: Optional[int]
    value: Optional[Value]
    confirmed: bool
    valid: bool = True
    exc_tag: bool = False
    exc_pc: Optional[Value] = None
    #: The fault recorded at insertion (speculative store's own trap).
    trap: Optional[Trap] = None
    #: PC of the store that created the entry (debug/recovery aid).
    store_pc: Optional[int] = None

    @property
    def probationary(self) -> bool:
        return self.valid and not self.confirmed

    @property
    def searchable(self) -> bool:
        """May a load forward from this entry?  (Section 4.1: a probationary
        entry with its exception tag set does not participate.)"""
        return self.valid and not self.exc_tag and self.address is not None


@dataclass(frozen=True)
class InsertOutcome:
    """Result of attempting to insert a store (one row of Table 2)."""

    inserted: bool
    #: PC to report when the insertion itself signals (non-spec rows).
    signal_pc: Optional[Value] = None
    #: True when the signal is the store's own fault (report its trap).
    signal_own: bool = False


class StoreBufferStall(SimulationError):
    """Raised if an insert is attempted while the buffer has no free slot.

    The processor must check :meth:`StoreBuffer.can_insert` and stall the
    pipeline instead; seeing this exception in a test means the N-1
    separation constraint (Section 4.2) was violated by the scheduler.
    """


class StoreBuffer:
    """FIFO store buffer with probationary-entry support."""

    def __init__(self, size: int, memory: Memory) -> None:
        if size < 1:
            raise ValueError("store buffer needs at least one entry")
        self.size = size
        self.memory = memory
        self.entries: Deque[StoreBufferEntry] = deque()
        self.stall_cycles = 0
        self.releases = 0
        self.cancellations = 0

    # ------------------------------------------------------------------

    def occupancy(self) -> int:
        return len(self.entries)

    def can_insert(self) -> bool:
        return len(self.entries) < self.size

    def head_blocked(self) -> bool:
        """Is release blocked by a probationary head entry?"""
        self._reclaim_invalid_head()
        return bool(self.entries) and self.entries[0].probationary

    # ------------------------------------------------------------------
    # Insertion: Table 2.
    # ------------------------------------------------------------------

    def insert(
        self,
        spec: bool,
        sources: Sequence[TaggedValue],
        address: Optional[int],
        value: Optional[Value],
        translation_trap: Optional[Trap],
        pc: int,
    ) -> InsertOutcome:
        """Insert one executed store per Table 2 of the paper.

        ``sources`` are the store's register source operands (base and data)
        in operand order.  ``translation_trap`` is the fault found while
        translating ``address``, already computed by the caller — it is only
        meaningful when no source is tagged (a tagged base register holds a
        PC, not an address, so translation is skipped).
        """
        tagged = first_tagged(sources)

        if not spec:
            if tagged is not None:
                # Rows (0,1,*): the store acts as a sentinel.
                return InsertOutcome(inserted=False, signal_pc=tagged.data, signal_own=False)
            if translation_trap is not None:
                # Row (0,0,1): conventional precise store exception.
                return InsertOutcome(inserted=False, signal_pc=pc, signal_own=True)
            # Row (0,0,0): confirmed entry.
            self._push(
                StoreBufferEntry(address=address, value=value, confirmed=True, store_pc=pc)
            )
            return InsertOutcome(inserted=True)

        # Speculative rows always insert a probationary (pending) entry.
        if tagged is not None:
            # Rows (1,1,*): propagate the incoming exception.
            entry = StoreBufferEntry(
                address=None,
                value=None,
                confirmed=False,
                exc_tag=True,
                exc_pc=tagged.data,
                store_pc=pc,
            )
        elif translation_trap is not None:
            # Row (1,0,1): record the store's own fault.
            entry = StoreBufferEntry(
                address=address,
                value=value,
                confirmed=False,
                exc_tag=True,
                exc_pc=pc,
                trap=translation_trap,
                store_pc=pc,
            )
        else:
            # Row (1,0,0): clean pending entry.
            entry = StoreBufferEntry(
                address=address, value=value, confirmed=False, store_pc=pc
            )
        self._push(entry)
        return InsertOutcome(inserted=True)

    def _push(self, entry: StoreBufferEntry) -> None:
        if not self.can_insert():
            raise StoreBufferStall(
                f"store buffer overflow: {len(self.entries)}/{self.size} entries"
            )
        self.entries.append(entry)

    # ------------------------------------------------------------------
    # Load forwarding.
    # ------------------------------------------------------------------

    def search(self, address: int) -> Optional[Value]:
        """Most recent searchable entry matching ``address``, if any."""
        for entry in reversed(self.entries):
            if entry.searchable and entry.address == address:
                return entry.value
        return None

    # ------------------------------------------------------------------
    # Release to the data cache (one confirmed entry per cycle).
    # ------------------------------------------------------------------

    def _reclaim_invalid_head(self) -> None:
        while self.entries and not self.entries[0].valid:
            self.entries.popleft()

    def release_cycle(self) -> bool:
        """One cycle's release opportunity.  Returns True if an entry moved.

        Invalid (cancelled) head entries are reclaimed for free; a confirmed
        head updates the data cache; a probationary head blocks.
        """
        self._reclaim_invalid_head()
        if not self.entries:
            return False
        head = self.entries[0]
        if not head.confirmed:
            return False
        self.entries.popleft()
        if head.address is not None:
            self.memory.poke(head.address, head.value)
        self.releases += 1
        self._reclaim_invalid_head()
        return True

    def drain(self) -> None:
        """Flush everything at program end.  Probationary leftovers are a
        scheduler bug (every speculative store must be confirmed or
        cancelled before its superblock exits)."""
        self._reclaim_invalid_head()
        for entry in list(self.entries):
            if entry.probationary:
                raise SimulationError(
                    f"probationary store (pc={entry.store_pc}) left in buffer at drain"
                )
        while self.entries:
            self.release_cycle()

    # ------------------------------------------------------------------
    # Confirmation and cancellation.
    # ------------------------------------------------------------------

    def confirm(self, index: int, pc: int) -> Optional[StoreBufferEntry]:
        """Execute ``confirm_store(index)``.

        ``index`` counts valid entries from the tail (0 = most recent).
        Returns the entry if its recorded exception must be signalled,
        None for a clean confirmation.  A tagged entry is invalidated so it
        never updates the cache; recovery re-executes the store.
        """
        target: Optional[StoreBufferEntry] = None
        seen = 0
        for entry in reversed(self.entries):
            if not entry.valid:
                continue
            if seen == index:
                target = entry
                break
            seen += 1
        if target is None:
            raise SimulationError(f"confirm_store({index}) at pc={pc}: no such entry")
        if not target.probationary:
            raise SimulationError(
                f"confirm_store({index}) at pc={pc} hit a non-probationary entry "
                f"(store pc={target.store_pc}) — bad confirm index in the schedule"
            )
        if target.exc_tag:
            target.valid = False
            return target
        target.confirmed = True
        return None

    def cancel_probationary(self) -> int:
        """Mispredicted branch: cancel all probationary entries."""
        count = 0
        for entry in self.entries:
            if entry.probationary:
                entry.valid = False
                count += 1
        self.cancellations += count
        self._reclaim_invalid_head()
        return count

    def probationary_count(self) -> int:
        return sum(1 for e in self.entries if e.probationary)
