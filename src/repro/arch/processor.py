"""Cycle-level in-order multi-issue processor executing scheduled code.

This is the verification engine of the reproduction: it executes a
:class:`~repro.sched.schedule.ScheduledProgram` word by word on a machine
with

* CRAY-1 style interlocking (a word stalls until all its source registers'
  deterministic latencies have elapsed, Section 5.1),
* the tagged register file and Table 1 exception semantics
  (:mod:`repro.core.tags`) in sentinel mode,
* silent (garbage-writing) speculative opcodes in general-percolation
  mode (Section 2.4),
* the probationary store buffer of Table 2, with one release opportunity
  per cycle, stall-on-full, and cancel-on-mispredict (Section 4.1),
* the PC History Queue supplying excepting PCs (Section 3.2).

Word semantics: all operations of a word read register state as of the
start of the word and execute together; a taken branch transfers control
*after* its word completes, so co-issued operations are architecturally
speculative — exactly the model the scheduler assumes.  Memory operations,
store-buffer actions and exception signals are processed in slot order
(slot order is original program order), which makes ``confirm_store``
indices and multi-signal ordering deterministic.

Exception policies:

* ``abort`` — the first signalled exception ends the run (a detected
  program error),
* ``record`` — log the signal, neutralize the tag, continue (used to
  observe multi-exception ordering, Section 3.6),
* ``recover`` — repair a repairable fault (page fault) and branch back to
  the reported PC, re-executing the restartable sequence (Section 3.7);
  probationary store-buffer entries are cancelled first since re-execution
  re-creates them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..core.tags import TaggedValue, apply_table1, first_tagged
from ..isa.instruction import Instruction
from ..isa.opcodes import Opcode
from ..isa.registers import Register
from ..isa.semantics import GARBAGE_FP, branch_taken, evaluate, garbage_for
from ..machine.description import MachineDescription
from ..machine.resources import word_resource_violation
from ..sched.schedule import ScheduledProgram
from .microtiming import MicroTiming
from .exceptions import (
    ABORT,
    RECORD,
    RECOVER,
    SignalledException,
    SimulationError,
    Trap,
    TrapKind,
)
from .memory import Memory
from .pc_history import PCHistoryQueue
from .regfile import TaggedRegisterFile
from .shadow import ShadowBank
from .store_buffer import StoreBuffer

Value = Union[int, float]

#: Hardware modes: tag-tracking sentinel hardware vs. silent opcodes vs.
#: Colwell-style NaN signalling (Section 2.4).
TAGGED_MODES = ("sentinel", "sentinel_store")
SILENT_MODES = ("restricted", "general", "colwell")

#: "An equivalent integer NaN must be provided for this method to work for
#: integer instructions" (Section 2.4) — a reserved 64-bit pattern.
INT_NAN = -0x7FFFFFFFFFFFFF7F


def _is_nan_value(value) -> bool:
    import math

    if isinstance(value, float):
        return math.isnan(value)
    return value == INT_NAN


@dataclass
class ProcessorResult:
    registers: Dict[Register, Value]
    memory: Memory
    exceptions: List[SignalledException]
    cycles: int
    dynamic_instructions: int
    halted: bool
    aborted: bool
    io_events: List[int] = field(default_factory=list)
    stall_cycles: int = 0
    interlock_stalls: int = 0
    store_buffer_stalls: int = 0
    recoveries: int = 0
    #: Taken conditional branches (the redirect count of an ideal front
    #: end); kept under its historical name.  Predictor *misses* are
    #: :attr:`branch_mispredicts`.
    mispredictions: int = 0
    cancelled_stores: int = 0
    #: Microarchitectural-timing counters; all zero on a timing-ideal
    #: machine (the paper default).
    fetch_stalls: int = 0
    branch_mispredicts: int = 0
    icache_misses: int = 0
    dcache_misses: int = 0

    def exception_origins(self) -> List[int]:
        return [exc.origin_pc for exc in self.exceptions]


class _Signal(Exception):
    """Internal: an exception signal raised mid-word."""

    def __init__(self, reported_pc: Value, own: bool, trap: Optional[Trap], reporter: Instruction):
        super().__init__(f"signal pc={reported_pc}")
        self.reported_pc = reported_pc
        self.own = own
        self.trap = trap
        self.reporter = reporter
        #: Store-buffer entry to invalidate when the signal is handled
        #: (fast-path confirm defers the mutation past fork snapshots).
        self.invalidate = None


class _StallStore(Exception):
    """Internal: the store buffer is full; retry this slot next cycle."""


class Processor:
    """Executes one scheduled program to completion."""

    def __init__(
        self,
        scheduled: ScheduledProgram,
        machine: MachineDescription,
        memory: Optional[Memory] = None,
        on_exception: str = ABORT,
        init_regs: Optional[Dict[Register, Value]] = None,
        init_tags: Optional[Dict[Register, int]] = None,
        max_cycles: int = 5_000_000,
        max_recoveries: int = 64,
    ) -> None:
        if on_exception not in (ABORT, RECORD, RECOVER):
            raise ValueError(f"unknown exception policy {on_exception!r}")
        mode = scheduled.policy_name
        boost_mode = mode.startswith("boosting")
        if not boost_mode and mode not in TAGGED_MODES + SILENT_MODES:
            raise ValueError(f"unknown scheduling model {mode!r}")
        if boost_mode and on_exception != ABORT:
            raise ValueError(
                "boosting hardware supports only the abort exception policy"
            )
        self.scheduled = scheduled
        self.machine = machine
        self.tagged_mode = mode in TAGGED_MODES
        self.colwell_mode = mode == "colwell"
        self.boost_mode = boost_mode
        self.shadow = ShadowBank()
        #: (branch uid, taken) pairs resolved during the current word.
        self._resolved_branches: List[Tuple[int, bool]] = []
        self.on_exception = on_exception
        self.memory = memory if memory is not None else Memory()
        self.regs = TaggedRegisterFile()
        if init_regs:
            for reg, value in init_regs.items():
                self.regs.write(reg, value)
        if init_tags:
            for reg, pc in init_tags.items():
                self.regs.set_tag(reg, pc)
        self.buffer = StoreBuffer(machine.store_buffer_size, self.memory)
        self.history = PCHistoryQueue(machine.pc_history_depth)
        self.max_cycles = max_cycles
        self.max_recoveries = max_recoveries
        #: Microarchitectural timing state; None on a timing-ideal machine.
        self.timing = MicroTiming.for_run(machine, scheduled)
        if (
            machine.branches_per_cycle is not None
            or machine.memory_ops_per_cycle is not None
        ):
            for blk in scheduled.blocks:
                for cycle, word in enumerate(blk.words):
                    violation = word_resource_violation(word, machine)
                    if violation is not None:
                        raise SimulationError(
                            f"block {blk.label} cycle {cycle}: {violation}"
                        )

        self._ready_time: Dict[Register, int] = {}
        #: footnote-3 side channel: pc -> the trap recorded when its tag was
        #: set, so sentinel reports can state the exception type.
        self._pending_traps: Dict[Value, Trap] = {}
        self._clock = 0
        self._exceptions: List[SignalledException] = []
        self._io_events: List[int] = []
        self._dyn = 0
        self._interlock_stalls = 0
        self._buffer_stalls = 0
        self._recoveries = 0
        self._mispredictions = 0

    # ------------------------------------------------------------------
    # Clock and stalls.
    # ------------------------------------------------------------------

    def _tick(self) -> None:
        self.buffer.release_cycle()
        self._clock += 1
        if self._clock > self.max_cycles:
            raise SimulationError(f"cycle limit {self.max_cycles} exceeded")

    def _read(self, reg: Register) -> TaggedValue:
        if self.boost_mode and not reg.is_zero:
            # Boosted consumers read through the shadow files; anti
            # dependences guarantee an earlier-in-program-order reader never
            # observes a later boosted write (it issues no later than it).
            entry = self.shadow.read_register(reg)
            if entry is not None:
                return TaggedValue(entry.value, False)
        return self.regs.read(reg)

    def _sources(self, instr: Instruction) -> List[TaggedValue]:
        return [self._read(s) for s in instr.srcs if isinstance(s, Register)]

    def _operand(self, operand) -> Value:
        if isinstance(operand, Register):
            return self._read(operand).data
        return operand

    def _write(
        self, instr: Instruction, value: Value, tag: bool, extra_latency: int = 0
    ) -> None:
        dest = instr.dest
        if dest is None:
            return
        self.regs.write(dest, value, tag)
        self._ready_time[dest] = (
            self._clock + self.machine.latency(instr.op) + extra_latency
        )

    # ------------------------------------------------------------------
    # Main loop.
    # ------------------------------------------------------------------

    def run(self) -> ProcessorResult:
        blocks = self.scheduled.blocks
        if not blocks:
            raise SimulationError("empty scheduled program")
        block_idx = 0
        word_idx = 0
        slot_idx = 0
        halted = False
        aborted = False
        stall_watchdog = 0
        #: A taken branch seen earlier in a word that was then interrupted
        #: by a stall or a signal; survives the word's resumption.
        pending_taken: Optional[str] = None
        pending_taken_conditional = False
        timing = self.timing
        #: A word's front-end cost is charged exactly once, at its first
        #: fetch; re-entry after a store-buffer stall or a sentinel
        #: re-execution is not a refetch.
        fetch_pending = True
        fetch_redirect = False

        while True:
            block = blocks[block_idx]
            if word_idx >= len(block.words):
                if not block.falls_through:
                    raise SimulationError(
                        f"control fell off non-fall-through block {block.label}"
                    )
                if block_idx + 1 >= len(blocks):
                    raise SimulationError("control fell off the end of the program")
                block_idx += 1
                word_idx = 0
                slot_idx = 0
                continue

            word = block.words[word_idx]
            if fetch_pending:
                fetch_pending = False
                if timing is not None:
                    for _ in range(
                        timing.fetch_word(block_idx, word_idx, len(word), fetch_redirect)
                    ):
                        self._tick()
            # CRAY-1 interlock: wait for the remaining slots' sources.
            needed = self._clock
            for instr in word[slot_idx:]:
                for src in instr.srcs:
                    if isinstance(src, Register):
                        needed = max(needed, self._ready_time.get(src, 0))
            while self._clock < needed:
                self._interlock_stalls += 1
                self._tick()

            if slot_idx == 0:
                pending_taken = None
                pending_taken_conditional = False
                self._resolved_branches.clear()
            outcome: Optional[_Signal] = None
            stalled = False
            slot = slot_idx
            while slot < len(word):
                instr = word[slot]
                try:
                    taken = self._execute(instr)
                except _StallStore:
                    stalled = True
                    break
                except _Signal as signal:
                    self._dyn += 1
                    outcome = signal
                    break
                self._dyn += 1
                if taken is not None:
                    if pending_taken is not None:
                        raise SimulationError("two taken branches in one word")
                    pending_taken = taken
                    pending_taken_conditional = instr.info.is_cond_branch
                slot += 1

            if stalled:
                slot_idx = slot
                self._buffer_stalls += 1
                stall_watchdog += 1
                if stall_watchdog > self.machine.store_buffer_size + 32:
                    raise SimulationError(
                        "store buffer deadlock: head probationary and no "
                        "confirm in flight (N-1 separation violated?)"
                    )
                self._tick()
                continue
            stall_watchdog = 0

            if outcome is not None:
                disposition = self._handle_signal(outcome)
                if disposition == "abort":
                    aborted = True
                    self._tick()
                    break
                if isinstance(disposition, tuple):
                    # Recovery: branch back to the reported pc.  The
                    # re-entry is a redirect — the front end refetches.
                    block_idx, word_idx, slot_idx = disposition
                    pending_taken = None
                    pending_taken_conditional = False
                    fetch_pending = True
                    fetch_redirect = True
                    self._tick()
                    continue
                # RECORD: a sentinel report had its tags neutralized — the
                # reporter re-executes; an own-fault reporter completed with
                # a garbage result and is skipped.
                slot_idx = slot if disposition == "record-reexecute" else slot + 1
                if slot_idx < len(word):
                    continue
                # fall through: the word completed despite the signal

            self._tick()  # the word consumed its cycle
            if self.boost_mode and self._resolved_branches:
                if self._process_shadow_resolutions():
                    aborted = True
                    break
            taken_target = pending_taken
            if taken_target == "__halt__":
                halted = True
                break
            if taken_target is not None:
                self.buffer.cancel_probationary()
                if pending_taken_conditional:
                    self._mispredictions += 1
                block_idx = self.scheduled.block_index(taken_target)
                word_idx = 0
                slot_idx = 0
                fetch_pending = True
                fetch_redirect = True
            else:
                word_idx += 1
                slot_idx = 0
                fetch_pending = True
                fetch_redirect = False

        if halted:
            if self.boost_mode:
                self.shadow.assert_empty()
            self.buffer.drain()
        fetch_stalls = 0 if timing is None else timing.fetch_stalls
        return ProcessorResult(
            registers=self.regs.values(),
            memory=self.memory,
            exceptions=self._exceptions,
            cycles=self._clock,
            dynamic_instructions=self._dyn,
            halted=halted,
            aborted=aborted,
            io_events=self._io_events,
            stall_cycles=self._interlock_stalls + self._buffer_stalls + fetch_stalls,
            interlock_stalls=self._interlock_stalls,
            store_buffer_stalls=self._buffer_stalls,
            recoveries=self._recoveries,
            mispredictions=self._mispredictions,
            cancelled_stores=self.buffer.cancellations,
            fetch_stalls=fetch_stalls,
            branch_mispredicts=0 if timing is None else timing.branch_mispredicts,
            icache_misses=0 if timing is None else timing.icache_misses,
            dcache_misses=0 if timing is None else timing.dcache_misses,
        )

    # ------------------------------------------------------------------
    # Shadow commit (instruction boosting).
    # ------------------------------------------------------------------

    def _process_shadow_resolutions(self) -> bool:
        """Apply the word's branch resolutions to the shadow bank.

        Returns True when a committing entry signals its buffered exception
        ("when the machine state is updated for a correctly predicted
        branch, exceptions that occurred are signaled", Section 2.3).
        """
        resolutions = list(self._resolved_branches)
        self._resolved_branches.clear()
        for branch_uid, taken in resolutions:
            for entry in self.shadow.resolve(branch_uid, taken):
                if entry.trap is not None:
                    try:
                        origin = self.scheduled.origin_of(entry.pc)
                    except KeyError:
                        origin = entry.pc
                    self._exceptions.append(
                        SignalledException(
                            pc=entry.pc,
                            kind=entry.trap.kind,
                            reporter_pc=branch_uid,
                            origin_pc=origin,
                            detail=entry.trap.detail,
                        )
                    )
                    return True
                if entry.reg is not None:
                    self.regs.write(entry.reg, entry.value)
                else:
                    # Shadow store commits into the conventional buffer;
                    # commit bandwidth is idealized (direct cache write on
                    # overflow) in boosting's favour.
                    if self.buffer.can_insert():
                        self.buffer.insert(
                            False, (), entry.address, entry.value, None, entry.pc
                        )
                    else:
                        self.memory.poke(entry.address, entry.value)
        return False

    # ------------------------------------------------------------------
    # Signal handling.
    # ------------------------------------------------------------------

    def _signal_record(self, signal: _Signal) -> SignalledException:
        if signal.own and signal.trap is not None:
            kind = signal.trap.kind
        else:
            pending = self._pending_traps.get(signal.reported_pc)
            kind = pending.kind if pending is not None else TrapKind.ACCESS_VIOLATION
        pc = int(signal.reported_pc)
        try:
            origin = self.scheduled.origin_of(pc)
        except KeyError:
            origin = pc
        record = SignalledException(
            pc=pc,
            kind=kind,
            reporter_pc=signal.reporter.uid,
            origin_pc=origin,
            detail="" if signal.trap is None else signal.trap.detail,
        )
        self._exceptions.append(record)
        return record

    def _handle_signal(self, signal: _Signal):
        self._signal_record(signal)
        if self.on_exception == ABORT:
            return "abort"
        if self.on_exception == RECORD:
            if signal.own:
                # The reporter's own fault: complete it with a garbage
                # result (what a handler-patched resume would look like)
                # and move on.
                if signal.reporter.dest is not None:
                    self._write(
                        signal.reporter, garbage_for(signal.reporter.op), False
                    )
                return "record-skip"
            if signal.reporter.op is Opcode.CONFIRM:
                # The faulty entry was invalidated; the store is simply lost
                # in record mode.
                return "record-skip"
            # Sentinel report: neutralize the offending tags and let the
            # reporter re-execute normally.
            for src in signal.reporter.srcs:
                if isinstance(src, Register) and self.regs.tag(src):
                    self.regs.clear_tag(src)
            return "record-reexecute"
        # RECOVER.
        return self._recover(signal)

    def _recover(self, signal: _Signal):
        self._recoveries += 1
        if self._recoveries > self.max_recoveries:
            return "abort"
        pc = int(signal.reported_pc)
        trap = signal.trap if signal.own else self._pending_traps.get(pc)
        if trap is None or not trap.kind.repairable:
            return "abort"
        try:
            culprit = self.scheduled.instruction_by_uid(pc)
        except KeyError:
            return "abort"
        if culprit.info.reads_mem or culprit.info.writes_mem:
            # Restartability guarantees the address operands still hold
            # their original values: recompute and repair.
            base = self._operand(culprit.srcs[0])
            address = int(base) + int(culprit.srcs[1])
            self.memory.repair(address)
        else:
            return "abort"
        self._pending_traps.pop(pc, None)
        location = self.scheduled.find_instruction(pc)
        if location is None:
            return "abort"
        # Re-execution re-creates every probationary entry in the window.
        self.buffer.cancel_probationary()
        return location

    def _raise_signal(
        self, instr: Instruction, reported_pc: Value, own: bool, trap: Optional[Trap]
    ) -> None:
        raise _Signal(reported_pc, own, trap, instr)

    # ------------------------------------------------------------------
    # Instruction execution.
    # ------------------------------------------------------------------

    def _execute(self, instr: Instruction) -> Optional[str]:
        """Execute one slot.  Returns a taken-branch target label,
        ``"__halt__"``, or None.  Raises _Signal / _StallStore."""
        op = instr.op
        info = op.info
        self.history.push(self._clock, instr.uid)
        pc = self.history.lookup(instr.uid)

        # ---- control ---------------------------------------------------
        if info.is_cond_branch:
            sources = self._sources(instr)
            if self.tagged_mode:
                tagged = first_tagged(sources)
                if tagged is not None:
                    self._raise_signal(instr, tagged.data, own=False, trap=None)
            a = self._operand(instr.srcs[0])
            b = self._operand(instr.srcs[1])
            taken = branch_taken(op, a, b)
            if self.timing is not None:
                self.timing.branch_resolved(instr.uid, taken)
            if self.boost_mode:
                # Shadow resolution happens when the word completes.
                self._resolved_branches.append((instr.uid, taken))
            return instr.target if taken else None
        if op is Opcode.JUMP:
            return instr.target
        if op is Opcode.HALT:
            return "__halt__"
        if op in (Opcode.JSR, Opcode.IO):
            self._io_events.append(instr.origin_uid)
            return None
        if op is Opcode.NOP:
            return None

        # ---- sentinel-support opcodes ----------------------------------
        if op is Opcode.CLRTAG:
            if instr.dest is not None:
                self.regs.clear_tag(instr.dest)
            return None
        if op is Opcode.CHECK:
            source = self._read(instr.srcs[0])
            if self.tagged_mode and source.tag:
                self._raise_signal(instr, source.data, own=False, trap=None)
            if instr.dest is not None:
                self._write(instr, source.data, False)
            return None
        if op is Opcode.CONFIRM:
            entry = self.buffer.confirm(int(instr.srcs[0]), instr.uid)
            if entry is not None:
                trap = entry.trap
                self._raise_signal(instr, entry.exc_pc, own=False, trap=trap)
            return None

        # ---- memory ------------------------------------------------------
        if op in (Opcode.TLOAD, Opcode.TSTORE):
            return self._execute_tagmove(instr)
        if op in (Opcode.LOAD, Opcode.FLOAD):
            return self._execute_load(instr, pc)
        if op in (Opcode.STORE, Opcode.FSTORE):
            return self._execute_store(instr, pc)

        # ---- computational -------------------------------------------
        return self._execute_compute(instr, pc)

    # -- helpers ---------------------------------------------------------

    def _execute_tagmove(self, instr: Instruction) -> None:
        base = self._read(instr.srcs[0])
        address = int(base.data) + int(instr.srcs[1])
        if instr.op is Opcode.TLOAD:
            value, tag = self.memory.peek_tagged(address)
            self._write(instr, value, tag if self.tagged_mode else False)
        else:
            source = self._read(instr.srcs[2]) if isinstance(instr.srcs[2], Register) else None
            if source is None:
                self.memory.poke_tagged(address, instr.srcs[2], False)
            else:
                self.memory.poke_tagged(address, source.data, source.tag)
        return None

    def _colwell_poison(self, instr: Instruction):
        """The NaN a silent colwell-mode trap writes (Section 2.4)."""
        return GARBAGE_FP if instr.info.fp_dest else INT_NAN

    def _colwell_nan_operand(self, instr: Instruction) -> bool:
        """Does a register operand carry (integer or FP) NaN?"""
        return any(
            _is_nan_value(self._read(s).data)
            for s in instr.srcs
            if isinstance(s, Register)
        )

    def _colwell_signal_if_poisoned(self, instr: Instruction, pc: int) -> None:
        """Colwell detection: 'The use of NaN is then signaled by any
        trapping instruction.'  The reported PC is the *consumer*'s — the
        paper's attribution critique."""
        if (
            self.colwell_mode
            and not instr.spec
            and instr.info.can_trap
            and self._colwell_nan_operand(instr)
        ):
            self._raise_signal(
                instr, pc, own=True,
                trap=Trap(TrapKind.FP_INVALID, detail="NaN detected (colwell)"),
            )

    def _shadow_write(
        self, instr: Instruction, value, trap, pc: int, extra_latency: int = 0
    ) -> None:
        """Route a boosted result into the shadow files (Section 2.3)."""
        self.shadow.write_register(
            instr.dest, value, trap, pc, instr.boost_branches
        )
        self._ready_time[instr.dest] = (
            self._clock + self.machine.latency(instr.op) + extra_latency
        )

    def _execute_load(self, instr: Instruction, pc: int) -> None:
        if self.boost_mode and instr.boost_branches:
            base = self._read(instr.srcs[0])
            address = int(base.data) + int(instr.srcs[1])
            trap = self.memory.check(address)
            extra = 0
            if trap is None:
                value = self.shadow.search_store(address)
                if value is None:
                    forwarded = self.buffer.search(address)
                    if forwarded is not None:
                        value = forwarded
                    else:
                        value = self.memory.peek(address)
                        if self.timing is not None:
                            extra = self.timing.load_extra(address)
                if instr.op is Opcode.FLOAD and isinstance(value, int):
                    value = float(value)
            else:
                value = garbage_for(instr.op)
            self._shadow_write(instr, value, trap, pc, extra)
            return None
        sources = self._sources(instr)
        tagged = first_tagged(sources) if self.tagged_mode else None
        if tagged is not None:
            outcome = apply_table1(instr.spec, sources, False, pc, None)
            if outcome.signal_pc is not None:
                self._raise_signal(instr, outcome.signal_pc, own=False, trap=None)
            self._write(instr, outcome.dest_data, outcome.dest_tag)
            return None
        base = self._read(instr.srcs[0])
        address = int(base.data) + int(instr.srcs[1])
        trap = self.memory.check(address)
        extra = 0
        if trap is None:
            forwarded = self.buffer.search(address)
            if forwarded is not None:
                value: Value = forwarded
            else:
                value = self.memory.peek(address)
                # Only an actual memory read probes the D-cache; buffer
                # forwards and faulting accesses never reach it.
                if self.timing is not None:
                    extra = self.timing.load_extra(address)
            if instr.op is Opcode.FLOAD and isinstance(value, int):
                value = float(value)
        else:
            value = None
        if self.tagged_mode:
            outcome = apply_table1(instr.spec, sources, trap is not None, pc, value)
            if outcome.signal_pc is not None:
                self._raise_signal(instr, outcome.signal_pc, own=True, trap=trap)
            if outcome.dest_tag:
                self._pending_traps[pc] = trap
            self._write(instr, outcome.dest_data, outcome.dest_tag, extra)
        else:
            self._colwell_signal_if_poisoned(instr, pc)
            if trap is not None:
                if instr.spec:
                    poison = (
                        self._colwell_poison(instr)
                        if self.colwell_mode
                        else garbage_for(instr.op)
                    )
                    self._write(instr, poison, False)  # silent
                else:
                    self._raise_signal(instr, pc, own=True, trap=trap)
            else:
                self._write(instr, value, False, extra)
        return None

    def _execute_store(self, instr: Instruction, pc: int) -> None:
        if self.boost_mode and instr.boost_branches:
            base = self._read(instr.srcs[0])
            address = int(base.data) + int(instr.srcs[1])
            value = self._operand(instr.srcs[2])
            trap = self.memory.check(address)
            self.shadow.write_store(address, value, trap, pc, instr.boost_branches)
            return None
        sources = self._sources(instr)
        if not self.tagged_mode and not self.boost_mode and instr.spec:
            raise SimulationError(
                f"speculative store {instr.uid} under a silent-mode schedule"
            )
        tagged = first_tagged(sources) if self.tagged_mode else None
        address: Optional[int] = None
        value: Optional[Value] = None
        trap: Optional[Trap] = None
        if tagged is None:
            base = self._read(instr.srcs[0])
            address = int(base.data) + int(instr.srcs[1])
            value = self._operand(instr.srcs[2])
            trap = self.memory.check(address)
        if not self.tagged_mode:
            # Conventional buffer: non-speculative confirmed entries only.
            self._colwell_signal_if_poisoned(instr, pc)
            if trap is not None:
                self._raise_signal(instr, pc, own=True, trap=trap)
            if not self.buffer.can_insert():
                raise _StallStore()
            self.buffer.insert(False, (), address, value, None, pc)
            return None
        # Tagged mode: Table 2.  Insertion rows need a free slot.
        will_insert = instr.spec or (tagged is None and trap is None)
        if will_insert and not self.buffer.can_insert():
            raise _StallStore()
        outcome = self.buffer.insert(
            instr.spec, sources if self.tagged_mode else (), address, value, trap, pc
        )
        if instr.spec and trap is not None and tagged is None:
            self._pending_traps[pc] = trap
        if outcome.signal_pc is not None:
            self._raise_signal(
                instr, outcome.signal_pc, own=outcome.signal_own, trap=trap
            )
        return None

    def _execute_compute(self, instr: Instruction, pc: int) -> None:
        if self.boost_mode and instr.boost_branches:
            vals = [self._operand(s) for s in instr.srcs]
            result, trap = evaluate(instr.op, vals)
            self._shadow_write(instr, result, trap, pc)
            return None
        sources = self._sources(instr)
        tagged = first_tagged(sources) if self.tagged_mode else None
        if tagged is not None:
            outcome = apply_table1(instr.spec, sources, False, pc, None)
            if outcome.signal_pc is not None:
                self._raise_signal(instr, outcome.signal_pc, own=False, trap=None)
            self._write(instr, outcome.dest_data, outcome.dest_tag)
            return None
        vals = [self._operand(s) for s in instr.srcs]
        result, trap = evaluate(instr.op, vals)
        if self.tagged_mode:
            outcome = apply_table1(instr.spec, sources, trap is not None, pc, result)
            if outcome.signal_pc is not None:
                self._raise_signal(instr, outcome.signal_pc, own=True, trap=trap)
            if outcome.dest_tag:
                self._pending_traps[pc] = trap
            self._write(instr, outcome.dest_data, outcome.dest_tag)
        else:
            self._colwell_signal_if_poisoned(instr, pc)
            if trap is not None:
                if instr.spec:
                    poison = (
                        self._colwell_poison(instr)
                        if self.colwell_mode
                        else result
                    )
                    self._write(instr, poison, False)  # silent garbage result
                else:
                    self._raise_signal(instr, pc, own=True, trap=trap)
            else:
                self._write(instr, result, False)
        return None


def _fast_default() -> bool:
    """``REPRO_FAST_PROC=0`` forces the reference engine suite-wide."""
    import os

    return os.environ.get("REPRO_FAST_PROC", "") != "0"


def run_scheduled(
    scheduled: ScheduledProgram,
    machine: MachineDescription,
    memory: Optional[Memory] = None,
    on_exception: str = ABORT,
    init_regs: Optional[Dict[Register, Value]] = None,
    init_tags: Optional[Dict[Register, int]] = None,
    max_cycles: int = 5_000_000,
    fast: Optional[bool] = None,
) -> ProcessorResult:
    """Convenience wrapper: build a processor and run once.

    ``fast`` selects the pre-decoded engine
    (:class:`repro.arch.fastproc.FastProcessor`, bit-identical on all
    observable state).  The default (``None``) is fast unless the
    ``REPRO_FAST_PROC=0`` environment escape hatch is set; ``fast=False``
    forces the reference engine for one run.  Boosting schedules always
    use the reference engine (the fast path does not model shadow banks).
    """
    if fast is None:
        fast = _fast_default()
    if fast and not scheduled.policy_name.startswith("boosting"):
        from .fastproc import FastProcessor

        return FastProcessor(
            scheduled,
            machine,
            memory=memory,
            on_exception=on_exception,
            init_regs=init_regs,
            init_tags=init_tags,
            max_cycles=max_cycles,
        ).run()
    processor = Processor(
        scheduled,
        machine,
        memory=memory,
        on_exception=on_exception,
        init_regs=init_regs,
        init_tags=init_tags,
        max_cycles=max_cycles,
    )
    return processor.run()
