"""Shadow storage for instruction boosting (Section 2.3 of the paper).

"The restrictions are overcome by providing sufficient hardware storage to
buffer results until the branches an instruction moved past are committed.
If all branches are found to be correctly predicted, the machine state is
updated by the boosted instructions' effects.  If one or more of the
branches are incorrectly predicted, the buffered results are thrown away.
Two sets of buffer storage are required for this scheduling model, shadow
register files and shadow store buffers."

Each shadow entry records the destination (a register, or a store's
address/value), any exception the boosted execution raised ("Exceptions
for boosted instructions are detected by marking in the appropriate shadow
structure whether an exception occurred"), the boosted instruction's PC,
and the set of branch uids still pending.  A branch resolving fall-through
strikes itself from every pending set; entries whose set empties **commit**
in insertion order (signalling their buffered exception, if any, precisely
at commit).  A taken branch **squashes** every entry still naming it.

Capacity is idealized (a shadow *file* per level holds the whole register
file; we likewise do not bound shadow store entries), which favours
boosting — the comparison bench measures sentinel scheduling against
boosting at its best.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple, Union

from ..isa.registers import Register
from .exceptions import SimulationError, Trap

Value = Union[int, float]


@dataclass
class ShadowEntry:
    #: Destination register for computational results; None for stores.
    reg: Optional[Register]
    #: Store address (None for register results).
    address: Optional[int]
    value: Optional[Value]
    trap: Optional[Trap]
    pc: int
    pending: Set[int]

    @property
    def is_store(self) -> bool:
        return self.address is not None or (self.reg is None)


class ShadowBank:
    """Shadow register files + shadow store buffers, merged."""

    def __init__(self) -> None:
        self._entries: List[ShadowEntry] = []
        self.squashed = 0
        self.committed = 0

    # ------------------------------------------------------------------

    def write_register(
        self,
        reg: Register,
        value: Value,
        trap: Optional[Trap],
        pc: int,
        branches: Tuple[int, ...],
    ) -> None:
        self._entries.append(
            ShadowEntry(reg=reg, address=None, value=value, trap=trap,
                        pc=pc, pending=set(branches))
        )

    def write_store(
        self,
        address: Optional[int],
        value: Optional[Value],
        trap: Optional[Trap],
        pc: int,
        branches: Tuple[int, ...],
    ) -> None:
        self._entries.append(
            ShadowEntry(reg=None, address=address, value=value, trap=trap,
                        pc=pc, pending=set(branches))
        )

    # ------------------------------------------------------------------

    def read_register(self, reg: Register) -> Optional[ShadowEntry]:
        """Newest pending shadow value of ``reg`` (boosted consumers read
        through the shadow files)."""
        for entry in reversed(self._entries):
            if entry.reg is reg:
                return entry
        return None

    def search_store(self, address: int) -> Optional[Value]:
        """Newest pending shadow store to ``address`` (boosted loads forward
        from boosted stores on the same predicted path)."""
        for entry in reversed(self._entries):
            if entry.reg is None and entry.address == address and entry.trap is None:
                return entry.value
        return None

    # ------------------------------------------------------------------

    def resolve(self, branch_uid: int, taken: bool) -> List[ShadowEntry]:
        """A branch resolved.  Taken squashes; fall-through may commit.

        Returns the entries that became committable, in insertion order;
        the caller applies them to architectural state and signals any
        buffered exception.
        """
        if taken:
            before = len(self._entries)
            self._entries = [
                e for e in self._entries if branch_uid not in e.pending
            ]
            self.squashed += before - len(self._entries)
            return []
        commits: List[ShadowEntry] = []
        remaining: List[ShadowEntry] = []
        for entry in self._entries:
            entry.pending.discard(branch_uid)
            if entry.pending:
                remaining.append(entry)
            else:
                commits.append(entry)
        self._entries = remaining
        self.committed += len(commits)
        return commits

    def pending_count(self) -> int:
        return len(self._entries)

    def assert_empty(self) -> None:
        if self._entries:
            raise SimulationError(
                f"{len(self._entries)} shadow entries pending at program end "
                f"(first pc={self._entries[0].pc})"
            )
