"""Hardware substrate: memory, exceptions, tagged register file, store
buffer, PC history queue, cycle-level processor and timing model."""

from .exceptions import SignalledException, SimulationError, Trap, TrapKind
from .memory import Memory
from .pc_history import PCHistoryQueue
from .processor import ABORT, RECORD, RECOVER, Processor, ProcessorResult, run_scheduled
from .regfile import TaggedRegisterFile
from .store_buffer import InsertOutcome, StoreBuffer, StoreBufferEntry, StoreBufferStall
from .timing import TimingBreakdown, estimate_cycles, speedup

__all__ = [
    "SignalledException",
    "SimulationError",
    "Trap",
    "TrapKind",
    "Memory",
    "PCHistoryQueue",
    "ABORT",
    "RECORD",
    "RECOVER",
    "Processor",
    "ProcessorResult",
    "run_scheduled",
    "TaggedRegisterFile",
    "InsertOutcome",
    "StoreBuffer",
    "StoreBufferEntry",
    "StoreBufferStall",
    "TimingBreakdown",
    "estimate_cycles",
    "speedup",
]
