"""The shared microarchitectural timing layer of the cycle simulators.

:class:`MicroTiming` is the runtime state machine behind the three
optional axes of :class:`~repro.machine.description.MachineDescription`
— variable-bandwidth fetch with taken-branch breaks, a branch direction
predictor with a redirect penalty, and direct-mapped I/D caches.  The
reference :class:`~repro.arch.processor.Processor` and the fast engine
(:mod:`repro.arch.fastproc`) both drive *one* implementation at the same
points of their cycle loops:

* ``fetch_word`` — once per fetched word, before issue: returns the
  front-end stall (fetch-width assembly cycles + taken-redirect break +
  I-cache miss + any owed misprediction redirect penalty).
* ``branch_resolved`` — when a conditional branch executes: consults and
  updates the predictor; a misprediction banks its redirect penalty,
  which the *next* ``fetch_word`` charges.
* ``load_extra`` — when a load actually reads memory (not a store-buffer
  forward, not a faulting access, not a tag propagation): returns the
  D-cache miss penalty, which rides into the destination's ready time
  and surfaces downstream as CRAY-1 interlock stalls.

Determinism: predictor table indices use *static word addresses* (layout
position of the branch), never instruction uids — uids are allocated
from a process-global counter and differ across runs for identical
programs, and timing must not.  The caches model timing only; data
always comes from memory or the store buffer, so a stale line can cost
cycles but never correctness.  Stores write around both caches.

For a timing-ideal machine :meth:`MicroTiming.for_run` returns ``None``
and the engines skip every call — the default paper machine's cycle
counts are bit-identical by construction.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..machine.description import MachineDescription
from ..sched.schedule import ScheduledProgram

__all__ = ["MicroTiming", "word_width_extra"]


def word_width_extra(n_slots: int, fetch_width: int) -> int:
    """Extra cycles to assemble an ``n_slots``-wide word at ``fetch_width``."""
    if n_slots <= fetch_width:
        return 0
    return (n_slots + fetch_width - 1) // fetch_width - 1


class MicroTiming:
    """Mutable per-run timing state; construct one per simulation run."""

    __slots__ = (
        "machine",
        "word_base",
        "_fetch_variable",
        "_fetch_width",
        "_taken_break",
        "_pred_kind",
        "_pred_penalty",
        "_pred_static",
        "_pred_table",
        "_pred_size",
        "_branch_pc",
        "_ic_enabled",
        "_ic_tags",
        "_ic_lines",
        "_ic_line_size",
        "_ic_penalty",
        "_dc_enabled",
        "_dc_tags",
        "_dc_lines",
        "_dc_line_size",
        "_dc_penalty",
        "_owed_redirect",
        "fetch_stalls",
        "icache_misses",
        "dcache_misses",
        "branch_mispredicts",
    )

    @staticmethod
    def for_run(
        machine: MachineDescription, scheduled: ScheduledProgram
    ) -> Optional["MicroTiming"]:
        """A fresh timing state, or ``None`` for a timing-ideal machine."""
        if machine.is_ideal_timing:
            return None
        return MicroTiming(machine, scheduled)

    def __init__(self, machine: MachineDescription, scheduled: ScheduledProgram) -> None:
        self.machine = machine

        # Static layout: the global word address of each block's word 0.
        # Both engines run the same ScheduledProgram, so these addresses
        # (and everything derived from them) are identical across engines
        # and across runs.
        base = 0
        self.word_base = []
        for blk in scheduled.blocks:
            self.word_base.append(base)
            base += len(blk.words)

        fetch = machine.fetch
        self._fetch_variable = fetch.mode == "variable"
        self._fetch_width = machine.fetch_width
        self._taken_break = fetch.taken_branch_break

        pred = machine.predictor
        self._pred_kind = pred.kind
        self._pred_penalty = pred.mispredict_penalty
        self._pred_size = pred.table_size
        self._pred_table = (
            [1] * pred.table_size if pred.kind == "bimodal" else []
        )
        # Static per-branch facts, keyed by uid *within this run only*:
        # the word address (predictor index) and the BTFN direction
        # (backward = target block laid out at or before the branch's).
        self._pred_static: Dict[int, bool] = {}
        self._branch_pc: Dict[int, int] = {}
        for block_idx, blk in enumerate(scheduled.blocks):
            for cycle, _slot, instr in blk.linear():
                target = getattr(instr, "target", None)
                if target is None or not instr.info.is_control:
                    continue
                self._branch_pc[instr.uid] = self.word_base[block_idx] + cycle
                try:
                    backward = scheduled.block_index(target) <= block_idx
                except KeyError:
                    backward = False
                self._pred_static[instr.uid] = backward

        icache = machine.icache
        self._ic_enabled = icache.kind == "direct"
        self._ic_lines = icache.lines
        self._ic_line_size = icache.line_size
        self._ic_penalty = icache.miss_penalty
        self._ic_tags = [-1] * icache.lines if self._ic_enabled else []

        dcache = machine.dcache
        self._dc_enabled = dcache.kind == "direct"
        self._dc_lines = dcache.lines
        self._dc_line_size = dcache.line_size
        self._dc_penalty = dcache.miss_penalty
        self._dc_tags = [-1] * dcache.lines if self._dc_enabled else []

        self._owed_redirect = 0
        self.fetch_stalls = 0
        self.icache_misses = 0
        self.dcache_misses = 0
        self.branch_mispredicts = 0

    # -- front end ----------------------------------------------------

    def fetch_word(
        self, block_idx: int, word_idx: int, n_slots: int, redirect: bool
    ) -> int:
        """Front-end stall cycles for fetching one word.

        Charged exactly once per fetch (the engines consume a pending
        flag, so re-entry into a word after a store-buffer stall or a
        sentinel re-execution does not re-charge).  ``redirect`` is True
        when control arrived here via a taken transfer (branch, jump, or
        recovery re-entry) rather than sequential fall-through.
        """
        stall = self._owed_redirect
        self._owed_redirect = 0
        if self._fetch_variable:
            if redirect:
                stall += self._taken_break
            stall += word_width_extra(n_slots, self._fetch_width)
        if self._ic_enabled:
            addr = self.word_base[block_idx] + word_idx
            line = (addr // self._ic_line_size) % self._ic_lines
            tag = addr // (self._ic_line_size * self._ic_lines)
            if self._ic_tags[line] != tag:
                self._ic_tags[line] = tag
                self.icache_misses += 1
                stall += self._ic_penalty
        self.fetch_stalls += stall
        return stall

    # -- branch predictor ---------------------------------------------

    def static_prediction(self, uid: int) -> bool:
        """The BTFN static direction for a branch (taken iff backward)."""
        return self._pred_static.get(uid, False)

    def branch_resolved(self, uid: int, taken: bool) -> bool:
        """Record one conditional branch resolving; True on mispredict.

        A misprediction banks ``mispredict_penalty`` redirect cycles
        against the next fetch, whichever path it fetches — the front
        end was running down the predicted path either way.
        """
        kind = self._pred_kind
        if kind == "perfect":
            return False
        if kind == "btfn":
            predicted = self._pred_static.get(uid, False)
        else:  # bimodal
            index = self._branch_pc.get(uid, 0) % self._pred_size
            counter = self._pred_table[index]
            predicted = counter >= 2
            if taken:
                if counter < 3:
                    self._pred_table[index] = counter + 1
            elif counter > 0:
                self._pred_table[index] = counter - 1
        if predicted == taken:
            return False
        self.branch_mispredicts += 1
        self._owed_redirect += self._pred_penalty
        return True

    # -- data cache ---------------------------------------------------

    def load_extra(self, address: int) -> int:
        """Extra load latency for one successful memory read (D-cache)."""
        if not self._dc_enabled:
            return 0
        line = (address // self._dc_line_size) % self._dc_lines
        tag = address // (self._dc_line_size * self._dc_lines)
        if self._dc_tags[line] != tag:
            self._dc_tags[line] = tag
            self.dcache_misses += 1
            return self._dc_penalty
        return 0
