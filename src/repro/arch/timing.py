"""Fast trace-driven timing model for the evaluation sweeps.

On the paper's machine (100 % cache hits, deterministic latencies, CRAY-1
interlocking) the cycles one superblock visit consumes are determined by
the static schedule and the exit actually taken: a visit leaving through a
branch issued in cycle ``c`` costs ``c + 1`` cycles; a fall-through visit
costs the schedule length.  Summing per-exit costs weighted by an
execution profile reproduces the execution-driven cycle count up to
cross-block interlock stalls and store-buffer stalls, which the cycle
simulator (:mod:`repro.arch.processor`) measures exactly; the test suite
cross-checks the two on small runs.

The profile must come from executing the *source* (superblock-form)
program of the schedule, so its labels and branch uids match.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..cfg.profile import ProfileData
from ..sched.schedule import ScheduledProgram


@dataclass
class TimingBreakdown:
    total_cycles: int
    per_block: Dict[str, int] = field(default_factory=dict)
    visits: Dict[str, int] = field(default_factory=dict)


def estimate_cycles(scheduled: ScheduledProgram, profile: ProfileData) -> TimingBreakdown:
    """Estimate total execution cycles of ``scheduled`` under ``profile``."""
    breakdown = TimingBreakdown(total_cycles=0)
    for block in scheduled.blocks:
        visits = profile.block_visits.get(block.label, 0)
        if visits == 0:
            continue
        block_cycles = 0
        taken_exits = 0
        terminator_cycle = None
        for cycle, _slot, instr in block.linear():
            if instr.info.is_cond_branch:
                taken = profile.branch_taken.get(instr.uid, 0)
                block_cycles += taken * (cycle + 1)
                taken_exits += taken
            elif instr.info.is_jump or instr.info.is_halt:
                terminator_cycle = cycle
        through = visits - taken_exits
        if through < 0:
            raise ValueError(
                f"profile inconsistent for block {block.label}: "
                f"{taken_exits} taken exits > {visits} visits"
            )
        if terminator_cycle is not None:
            through_cost = terminator_cycle + 1
        else:
            through_cost = block.length
        block_cycles += through * through_cost
        breakdown.per_block[block.label] = block_cycles
        breakdown.visits[block.label] = visits
        breakdown.total_cycles += block_cycles
    return breakdown


def speedup(base_cycles: int, candidate_cycles: int) -> float:
    """Speedup of a candidate over the base machine (paper Figures 4/5)."""
    if candidate_cycles <= 0:
        raise ValueError("candidate cycle count must be positive")
    return base_cycles / candidate_cycles
