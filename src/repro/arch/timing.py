"""Fast trace-driven timing model for the evaluation sweeps.

On the paper's machine (100 % cache hits, deterministic latencies, CRAY-1
interlocking) the cycles one superblock visit consumes are determined by
the static schedule and the exit actually taken: a visit leaving through a
branch issued in cycle ``c`` costs ``c + 1`` cycles; a fall-through visit
costs the schedule length.  Summing per-exit costs weighted by an
execution profile reproduces the execution-driven cycle count up to
cross-block interlock stalls and store-buffer stalls, which the cycle
simulator (:mod:`repro.arch.processor`) measures exactly; the test suite
cross-checks the two on small runs.

With a non-ideal :class:`~repro.machine.description.MachineDescription`
the estimate adds the front-end penalty terms the cycle simulator's
:class:`~repro.arch.microtiming.MicroTiming` charges:

* **variable fetch** — each fetched word's assembly extra
  (``ceil(slots/width) - 1``) plus a fetch break per taken redirect
  (conditional-branch exits and jump exits) — exact;
* **misprediction redirects** — per-branch, from taken counts and the
  per-branch execution count (visits minus earlier taken exits): exact
  for the static ``btfn`` predictor, and a per-branch best-static lower
  bound (``min(taken, not-taken)`` mispredicts) for ``bimodal``, whose
  table state the trace-driven model cannot replay;
* **caches — deliberately not modeled**: D-cache misses extend load
  latency and surface as interlock stalls, which this model never
  covered; I-cache miss stalls are likewise left to the simulator.

``tests/arch/test_timing_machines.py`` pins exactly these divergence
terms against the cycle simulator.

The profile must come from executing the *source* (superblock-form)
program of the schedule, so its labels and branch uids match.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..cfg.profile import ProfileData
from ..machine.description import MachineDescription
from ..sched.schedule import ScheduledProgram
from .microtiming import word_width_extra


@dataclass
class TimingBreakdown:
    total_cycles: int
    per_block: Dict[str, int] = field(default_factory=dict)
    visits: Dict[str, int] = field(default_factory=dict)
    #: Front-end cycles (fetch-width assembly + taken-redirect breaks)
    #: included in ``total_cycles``; zero on a timing-ideal machine.
    fetch_cycles: int = 0
    #: Misprediction redirect cycles included in ``total_cycles``; zero
    #: on a timing-ideal machine (estimated for bimodal predictors).
    mispredict_cycles: int = 0


def estimate_cycles(
    scheduled: ScheduledProgram,
    profile: ProfileData,
    machine: Optional[MachineDescription] = None,
) -> TimingBreakdown:
    """Estimate total execution cycles of ``scheduled`` under ``profile``.

    ``machine=None`` (or any timing-ideal machine) reproduces the paper
    model exactly; a non-ideal machine adds the penalty terms above.
    """
    breakdown = TimingBreakdown(total_cycles=0)
    ideal = machine is None or machine.is_ideal_timing
    if not ideal:
        variable = machine.fetch.mode == "variable"
        fetch_width = machine.fetch_width
        taken_break = machine.fetch.taken_branch_break if variable else 0
        pred_kind = machine.predictor.kind
        pred_penalty = machine.predictor.mispredict_penalty
    for block_idx, block in enumerate(scheduled.blocks):
        visits = profile.block_visits.get(block.label, 0)
        if visits == 0:
            continue
        block_cycles = 0
        taken_exits = 0
        terminator_cycle = None
        terminator_is_jump = False
        branches = []  # (cycle, instr, taken count), in issue order
        for cycle, _slot, instr in block.linear():
            if instr.info.is_cond_branch:
                taken = profile.branch_taken.get(instr.uid, 0)
                block_cycles += taken * (cycle + 1)
                taken_exits += taken
                if not ideal:
                    branches.append((cycle, instr, taken))
            elif instr.info.is_jump or instr.info.is_halt:
                terminator_cycle = cycle
                terminator_is_jump = instr.info.is_jump
        through = visits - taken_exits
        if through < 0:
            raise ValueError(
                f"profile inconsistent for block {block.label}: "
                f"{taken_exits} taken exits > {visits} visits"
            )
        if terminator_cycle is not None:
            through_cost = terminator_cycle + 1
        else:
            through_cost = block.length

        if not ideal:
            fetch_extra = 0
            if variable:
                # prefix[c] = assembly extra of fetching words 0..c-1.
                prefix = [0] * (block.length + 1)
                acc = 0
                for c, word in enumerate(block.words):
                    acc += word_width_extra(len(word), fetch_width)
                    prefix[c + 1] = acc
                for cycle, _instr, taken in branches:
                    fetch_extra += taken * prefix[cycle + 1]
                fetch_extra += through * prefix[through_cost]
                # Every taken redirect breaks the fetch pipeline:
                # conditional exits, and through-exits via a jump.
                fetch_extra += taken_exits * taken_break
                if terminator_is_jump:
                    fetch_extra += through * taken_break
            mispredict_extra = 0
            if pred_kind != "perfect" and branches:
                # A branch executes on every visit not already taken out
                # by a branch in a strictly earlier cycle (same-word
                # branches all execute together).
                earlier_taken = 0
                group_cycle: Optional[int] = None
                group_taken = 0
                for cycle, instr, taken in branches:
                    if cycle != group_cycle:
                        earlier_taken += group_taken
                        group_cycle = cycle
                        group_taken = 0
                    executions = visits - earlier_taken
                    not_taken = executions - taken
                    if not_taken < 0:
                        not_taken = 0
                    if pred_kind == "btfn":
                        try:
                            predict_taken = (
                                scheduled.block_index(instr.target) <= block_idx
                            )
                        except KeyError:
                            predict_taken = False
                        mispredicts = not_taken if predict_taken else taken
                    else:  # bimodal: best-static per-branch approximation
                        mispredicts = taken if taken < not_taken else not_taken
                    mispredict_extra += mispredicts * pred_penalty
                    group_taken += taken
            block_cycles += fetch_extra + mispredict_extra
            breakdown.fetch_cycles += fetch_extra
            breakdown.mispredict_cycles += mispredict_extra

        block_cycles += through * through_cost
        breakdown.per_block[block.label] = block_cycles
        breakdown.visits[block.label] = visits
        breakdown.total_cycles += block_cycles
    return breakdown


def speedup(base_cycles: int, candidate_cycles: int) -> float:
    """Speedup of a candidate over the base machine (paper Figures 4/5)."""
    if candidate_cycles <= 0:
        raise ValueError("candidate cycle count must be positive")
    return base_cycles / candidate_cycles
