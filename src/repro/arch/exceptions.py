"""Exception kinds, trap records and signalled-exception records.

The paper's base processor "is assumed to trap on exceptions for memory load,
memory store, integer divide, and all floating point instructions"
(Section 5.1).  All traps in this reproduction are **data-driven** — an access
to an unmapped or faulting address, a zero divisor, an FP overflow — so the
same program input produces the same traps under sequential reference
execution and under any scheduled execution.  That alignment is what lets the
test suite check the paper's central claim: sentinel scheduling signals
*exactly* the exceptions the sequential execution would, attributed to the
correct instruction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


#: Exception-handling policy names, shared by the reference interpreter
#: (:mod:`repro.interp.interpreter`) and the cycle-level processor
#: (:mod:`repro.arch.processor`).  ``ABORT`` stops at the first signal,
#: ``RECORD`` logs and continues, ``REPAIR``/``RECOVER`` fix repairable
#: faults and resume — the interpreter repairs in place while the
#: processor re-executes the restartable sequence (Section 3.7).
ABORT = "abort"
RECORD = "record"
REPAIR = "repair"
RECOVER = "recover"


class TrapKind(enum.Enum):
    """Why an instruction trapped."""

    # Identity hash (singletons; hash values never persisted) — trap-plan
    # lookups key dicts by TrapKind in the fuzz oracle's hot path.
    __hash__ = object.__hash__

    ACCESS_VIOLATION = "access_violation"  # address outside any mapped segment
    PAGE_FAULT = "page_fault"  # mapped but faulting (repairable)
    DIV_ZERO = "div_zero"
    FP_DIV_ZERO = "fp_div_zero"
    FP_OVERFLOW = "fp_overflow"
    FP_INVALID = "fp_invalid"

    @property
    def repairable(self) -> bool:
        """Can a handler repair the fault and retry the instruction?

        Page faults are the canonical repairable exception; the recovery
        machinery of Section 3.7 exists exactly for this case.
        """
        return self is TrapKind.PAGE_FAULT


@dataclass(frozen=True)
class Trap:
    """A raw trap produced while executing one instruction."""

    kind: TrapKind
    detail: str = ""
    address: Optional[int] = None


@dataclass(frozen=True)
class SignalledException:
    """An exception actually *signalled* to the program/OS.

    ``pc`` is the uid of the instruction reported as the cause.  Under
    sentinel scheduling this is the value carried through exception tags
    (Table 1): the PC of the original excepting speculative instruction, not
    of the sentinel that signalled it.  ``reporter_pc`` is the instruction
    that raised the signal (the sentinel itself, or the excepting instruction
    when non-speculative).  ``origin_pc`` maps through tail duplication to the
    pre-transformation instruction, which is what golden comparisons use.
    """

    pc: int
    kind: TrapKind
    reporter_pc: int
    origin_pc: int
    detail: str = ""


class SimulationError(Exception):
    """Internal simulator invariant violation (never an architectural trap)."""
