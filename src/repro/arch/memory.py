"""Simulated data memory with mapped segments and injectable page faults.

Memory is word-addressed: each address holds one value (int or float).  An
access outside every mapped segment raises an **access violation** trap; an
access to an address registered as *faulting* raises a **page fault** until
the address is repaired (``repair``), which models the OS mapping the page in
and lets the recovery experiments retry the excepting instruction
(Section 3.7 of the paper).

The tag-preserving ``tload``/``tstore`` instructions bypass trap checks
entirely (Section 3.2: they "do not signal exceptions ... to facilitate
saving/restoring registers containing an exception condition"); callers use
:meth:`peek`/:meth:`poke` for them.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple, Union

from .exceptions import Trap, TrapKind

Value = Union[int, float]


class Memory:
    """Word-addressed memory: mapped segments, values, faulting pages."""

    def __init__(self, segments: Iterable[Tuple[int, int]] = ((0, 1 << 20),)) -> None:
        #: Half-open mapped ranges [lo, hi).
        self.segments: List[Tuple[int, int]] = [(int(lo), int(hi)) for lo, hi in segments]
        self._data: Dict[int, Value] = {}
        self._faulting: Dict[int, TrapKind] = {}
        #: Exception-tag bits persisted by ``tstore`` (spill/context switch).
        self._tag_bits: Dict[int, bool] = {}

    # ------------------------------------------------------------------
    # Mapping and fault management.
    # ------------------------------------------------------------------

    def is_mapped(self, address: int) -> bool:
        return any(lo <= address < hi for lo, hi in self.segments)

    def add_segment(self, lo: int, hi: int) -> None:
        self.segments.append((lo, hi))

    def inject_page_fault(self, address: int) -> None:
        """Mark ``address`` as page-faulting until repaired."""
        self._faulting[address] = TrapKind.PAGE_FAULT

    def repair(self, address: int) -> None:
        """Clear an injected fault (the OS 'mapped the page')."""
        self._faulting.pop(address, None)

    def faulting_addresses(self) -> Tuple[int, ...]:
        return tuple(sorted(self._faulting))

    def check(self, address: int) -> Optional[Trap]:
        """Return the trap an access to ``address`` would raise, if any."""
        if not isinstance(address, int):
            return Trap(TrapKind.ACCESS_VIOLATION, detail="non-integer address")
        if not self.is_mapped(address):
            return Trap(TrapKind.ACCESS_VIOLATION, address=address)
        kind = self._faulting.get(address)
        if kind is not None:
            return Trap(kind, address=address)
        return None

    # ------------------------------------------------------------------
    # Trapping accesses (regular load/store).
    # ------------------------------------------------------------------

    def load(self, address: int) -> Tuple[Value, Optional[Trap]]:
        trap = self.check(address)
        if trap is not None:
            return 0, trap
        return self._data.get(address, 0), None

    def store(self, address: int, value: Value) -> Optional[Trap]:
        trap = self.check(address)
        if trap is not None:
            return trap
        self._data[address] = value
        return None

    # ------------------------------------------------------------------
    # Non-trapping accesses (tload/tstore, test setup, state comparison).
    # ------------------------------------------------------------------

    def peek(self, address: int) -> Value:
        return self._data.get(address, 0)

    def poke(self, address: int, value: Value) -> None:
        self._data[address] = value

    def poke_tagged(self, address: int, value: Value, tag: bool) -> None:
        """Store data *and* exception tag (the ``tstore`` instruction).

        Section 3.2: "The exception tag associated with each register must be
        preserved along with the data portion of that register whenever the
        contents of the register are temporarily stored to memory."
        """
        self._data[address] = value
        if tag:
            self._tag_bits[address] = True
        else:
            self._tag_bits.pop(address, None)

    def peek_tagged(self, address: int) -> Tuple[Value, bool]:
        """Load data and exception tag (the ``tload`` instruction)."""
        return self._data.get(address, 0), self._tag_bits.get(address, False)

    def snapshot(self) -> Dict[int, Value]:
        """All non-default words (zeros elided)."""
        return {addr: val for addr, val in self._data.items() if val != 0 or addr in self._data}

    def nonzero_snapshot(self) -> Dict[int, Value]:
        return {addr: val for addr, val in self._data.items() if val != 0}

    def clone(self) -> "Memory":
        other = Memory(self.segments)
        other._data = dict(self._data)
        other._faulting = dict(self._faulting)
        other._tag_bits = dict(self._tag_bits)
        return other

    def __repr__(self) -> str:
        return f"<Memory {len(self.segments)} segments, {len(self._data)} words, {len(self._faulting)} faulting>"
