"""Specializing fast-path engine for the cycle-level processor.

Mirrors the :mod:`repro.interp.fastpath` recipe for VLIW bundles: each
:class:`~repro.sched.schedule.ScheduledProgram` is pre-decoded **once**
into flat per-word execution records — resolved operand indices,
opcode-specialized handlers, pre-resolved branch targets, speculative and
sentinel flags — so the steady-state word loop does no dict lookups, no
``Opcode`` attribute chasing and no per-cycle object allocation:

* the tagged register file becomes four flat arrays (data, tag bits,
  written bits, ready times) indexed by a dense register number
  (``r0..r63`` = 0..63, ``f0..f63`` = 64..127; index 0 is the hardwired
  zero register and is never written, which reproduces the dict file's
  semantics exactly),
* per-word CRAY-1 interlock source sets are precomputed per resume slot,
* the store buffer is a slab of plain lists managed by
  :class:`_FastStoreBuffer`, re-implementing Table 2 and the release /
  confirm / cancel rules of :class:`~repro.arch.store_buffer.StoreBuffer`
  field for field,
* Table 1 is inlined into every operation family instead of allocating
  ``TaggedValue``/``TagOutcome`` objects,
* the PC History Queue is dropped: the reference pushes ``uid`` and looks
  the same ``uid`` up in the same cycle, so the reported PC is always the
  executing instruction's uid and the queue itself is unobservable.

The engine is **bit-identical to the reference** :class:`Processor` on
all observable state (registers, memory, exception records, counters,
cycle counts) — ``tests/arch/test_fastproc_diff.py`` pins this over the
workload suite and the fuzz corpus.  Boosting schedules keep the shadow
bank machinery of the reference engine; :func:`repro.arch.processor.run_scheduled`
falls back automatically.

Decoded programs are cached on the ``ScheduledProgram`` object keyed by
the machine's latency table, so repeated runs of one schedule (the fuzz
oracle's per-policy cells) decode once.  The cache follows the
``schedule_prepared`` contract: a schedule is consumed before the next
backend call invalidates its words, so a decode snapshot taken at first
run is never stale.
"""

from __future__ import annotations

import math
import operator
from typing import Dict, List, Optional, Tuple

from ..isa.opcodes import Opcode
from ..isa.registers import Register, all_registers
from ..isa.semantics import (
    GARBAGE_FP,
    GARBAGE_INT,
    evaluate,
    garbage_for,
    wrap64,
)
from ..machine.description import MachineDescription
from ..machine.resources import word_resource_violation
from ..sched.schedule import ScheduledProgram
from .microtiming import MicroTiming
from .exceptions import (
    ABORT,
    RECORD,
    RECOVER,
    SignalledException,
    SimulationError,
    Trap,
    TrapKind,
)
from .memory import Memory
from .processor import (
    INT_NAN,
    SILENT_MODES,
    TAGGED_MODES,
    ProcessorResult,
    Value,
    _Signal,
    _StallStore,
)

__all__ = ["FastProcessor", "decode_scheduled", "fork_processor"]

#: Dense register numbering: integer file first, then the FP file.
_REG_OBJECTS: Tuple[Register, ...] = all_registers()
_REG_COUNT = len(_REG_OBJECTS)
_FP_BASE = _REG_COUNT // 2


#: Register -> dense index.  Registers are interned singletons, so the
#: lookup is an identity-hash hit — cheaper than the two property reads
#: a computed index would cost in the decode loops.
_REG_INDEX: Dict[Register, int] = {
    reg: (reg.index if reg.is_int else _FP_BASE + reg.index) for reg in _REG_OBJECTS
}
#: As above, minus ``r0`` — the keys a tag/NaN operand scan cares about.
_TAGGABLE_INDEX: Dict[Register, int] = {
    reg: ri for reg, ri in _REG_INDEX.items() if not reg.is_zero
}


def _reg_index(reg: Register) -> int:
    return _REG_INDEX[reg]


# ----------------------------------------------------------------------
# Record kinds (tuple slot 0).
# ----------------------------------------------------------------------

K_COND = 0
K_JUMP = 1
K_HALT = 2
K_IO = 3
K_NOP = 4
K_CLRTAG = 5
K_CHECK = 6
K_CONFIRM = 7
K_TLOAD = 8
K_TSTORE = 9
K_LOAD = 10
K_STORE = 11
K_ALU = 12  # specialized never-trapping integer compute
K_COMPUTE = 13  # generic compute through evaluate()

_BRANCH_CMP = {
    Opcode.BEQ: operator.eq,
    Opcode.BNE: operator.ne,
    Opcode.BLT: operator.lt,
    Opcode.BGE: operator.ge,
    Opcode.BLE: operator.le,
    Opcode.BGT: operator.gt,
}

_U64 = 1 << 64


def _srl(a, b) -> int:
    return wrap64((int(a) % _U64) >> (int(b) & 63))


def _sltu(a, b) -> int:
    return int(int(a) % _U64 < int(b) % _U64)


#: Two-operand integer opcodes that can never trap, as (a, b) functions
#: mirroring :func:`repro.isa.semantics.evaluate` exactly — including the
#: per-operand ``int()`` coercion, which is observable when a float value
#: reaches an integer register through ``tload``.  ``MOV`` rides along
#: with a dummy second operand.
_FAST_ALU = {
    Opcode.ADD: lambda a, b: wrap64(int(a) + int(b)),
    Opcode.SUB: lambda a, b: wrap64(int(a) - int(b)),
    Opcode.AND: lambda a, b: wrap64(int(a) & int(b)),
    Opcode.OR: lambda a, b: wrap64(int(a) | int(b)),
    Opcode.XOR: lambda a, b: wrap64(int(a) ^ int(b)),
    Opcode.NOR: lambda a, b: wrap64(~(int(a) | int(b))),
    Opcode.SLL: lambda a, b: wrap64(int(a) << (int(b) & 63)),
    Opcode.SRL: _srl,
    Opcode.SRA: lambda a, b: wrap64(int(a) >> (int(b) & 63)),
    Opcode.SLT: lambda a, b: int(int(a) < int(b)),
    Opcode.SLTU: _sltu,
    Opcode.MUL: lambda a, b: wrap64(int(a) * int(b)),
    Opcode.MOV: lambda a, b: wrap64(int(a)),
}


def _operand_pair(src) -> Tuple[int, Value]:
    """(register index, immediate) — index -1 means use the immediate."""
    ri = _REG_INDEX.get(src)
    if ri is None:
        return -1, src
    return ri, 0


# Decode dispatch class per opcode, precomputed so the per-instruction
# decode does one dict lookup instead of walking an if-chain of identity
# tests for every computational instruction (the overwhelming majority).
(
    _D_COMPUTE,
    _D_LOAD,
    _D_STORE,
    _D_COND,
    _D_CHECK,
    _D_CONFIRM,
    _D_CLRTAG,
    _D_JUMP,
    _D_HALT,
    _D_IO,
    _D_NOP,
    _D_TLOAD,
    _D_TSTORE,
) = range(13)


def _classify_opcode(op) -> int:
    info = op.info
    if info.is_cond_branch:
        return _D_COND
    if op is Opcode.JUMP:
        return _D_JUMP
    if op is Opcode.HALT:
        return _D_HALT
    if op in (Opcode.JSR, Opcode.IO):
        return _D_IO
    if op is Opcode.NOP:
        return _D_NOP
    if op is Opcode.CLRTAG:
        return _D_CLRTAG
    if op is Opcode.CHECK:
        return _D_CHECK
    if op is Opcode.CONFIRM:
        return _D_CONFIRM
    if op is Opcode.TLOAD:
        return _D_TLOAD
    if op is Opcode.TSTORE:
        return _D_TSTORE
    if op in (Opcode.LOAD, Opcode.FLOAD):
        return _D_LOAD
    if op in (Opcode.STORE, Opcode.FSTORE):
        return _D_STORE
    return _D_COMPUTE


_DECODE_CLASS: Dict[Opcode, int] = {op: _classify_opcode(op) for op in Opcode}


def _tag_check_indices(instr) -> Tuple[int, ...]:
    """Register-operand indices in operand order, for tag / NaN scans.

    ``r0`` is skipped: it can never be tagged and always reads 0, so it
    contributes nothing to a first-tagged or NaN-operand scan.
    """
    get = _TAGGABLE_INDEX.get
    return tuple(ri for ri in map(get, instr.srcs) if ri is not None)


class _DecodedWord:
    """One VLIW word: execution records + per-resume-slot interlock sets."""

    __slots__ = ("records", "interlock")

    def __init__(self, records: List[tuple], interlock: List[Tuple[int, ...]]):
        self.records = records
        self.interlock = interlock


class _DecodedBlock:
    __slots__ = ("label", "words", "falls_through")

    def __init__(self, label: str, words: List[_DecodedWord], falls_through: bool):
        self.label = label
        self.words = words
        self.falls_through = falls_through


class _DecodedProgram:
    __slots__ = ("blocks", "origin_by_uid", "location_by_uid", "instr_by_uid")

    def __init__(self, scheduled: ScheduledProgram, machine: MachineDescription):
        latency = machine.latency
        block_index = {blk.label: i for i, blk in enumerate(scheduled.blocks)}
        self.origin_by_uid: Dict[int, int] = {}
        self.location_by_uid: Dict[int, Tuple[int, int, int]] = {}
        self.instr_by_uid: Dict[int, object] = {}
        self.blocks: List[_DecodedBlock] = []
        for block_idx, blk in enumerate(scheduled.blocks):
            words: List[_DecodedWord] = []
            for cycle, word in enumerate(blk.words):
                records: List[tuple] = []
                for slot, instr in enumerate(word):
                    self.origin_by_uid[instr.uid] = instr.origin_uid
                    self.location_by_uid[instr.uid] = (block_idx, cycle, slot)
                    self.instr_by_uid[instr.uid] = instr
                    records.append(self._decode(instr, latency, block_index))
                # Interlock source sets for each possible resume slot: the
                # union of register operands of word[s:], r0 included (its
                # ready time is tracked like any other register's).
                suffix: List[Tuple[int, ...]] = [()] * len(word)
                acc: Tuple[int, ...] = ()
                reg_of = _REG_INDEX.get
                for s in range(len(word) - 1, -1, -1):
                    seen = set(acc)
                    merged = list(acc)
                    for src in word[s].srcs:
                        ri = reg_of(src)
                        if ri is not None and ri not in seen:
                            seen.add(ri)  # dedup inside one instruction too
                            merged.append(ri)
                    acc = tuple(merged)
                    suffix[s] = acc
                words.append(_DecodedWord(records, suffix))
            self.blocks.append(_DecodedBlock(blk.label, words, blk.falls_through))

    @staticmethod
    def _decode(instr, latency, block_index) -> tuple:
        op = instr.op
        info = op.info
        uid = instr.uid
        kind = _DECODE_CLASS[op]
        if kind == _D_COMPUTE:
            dest_ri = -1 if instr.dest is None else _reg_index(instr.dest)
            operands = tuple(_operand_pair(s) for s in instr.srcs)
            fast_fn = _FAST_ALU.get(op)
            if fast_fn is not None and len(operands) <= 2 and not info.can_trap:
                a_ri, a_imm = operands[0]
                b_ri, b_imm = operands[1] if len(operands) > 1 else (-1, 0)
                return (
                    K_ALU,
                    instr,
                    bool(instr.spec),
                    _tag_check_indices(instr),
                    a_ri,
                    a_imm,
                    b_ri,
                    b_imm,
                    dest_ri,
                    latency(op),
                    uid,
                    fast_fn,
                )
            #: colwell-mode poison value (Section 2.4).
            poison = GARBAGE_FP if info.fp_dest else INT_NAN
            return (
                K_COMPUTE,
                instr,
                op,
                bool(instr.spec),
                _tag_check_indices(instr),
                operands,
                dest_ri,
                bool(info.can_trap),
                poison,
                latency(op),
                uid,
            )
        if kind == _D_LOAD:
            dest_ri = -1 if instr.dest is None else _reg_index(instr.dest)
            return (
                K_LOAD,
                instr,
                op,
                bool(instr.spec),
                _tag_check_indices(instr),
                _reg_index(instr.srcs[0]),
                int(instr.srcs[1]),
                dest_ri,
                op is Opcode.FLOAD,
                latency(op),
                uid,
            )
        if kind == _D_STORE:
            val_ri, val_imm = _operand_pair(instr.srcs[2])
            return (
                K_STORE,
                instr,
                bool(instr.spec),
                _tag_check_indices(instr),
                _reg_index(instr.srcs[0]),
                int(instr.srcs[1]),
                val_ri,
                val_imm,
                uid,
            )
        if kind == _D_COND:
            a_ri, a_imm = _operand_pair(instr.srcs[0])
            b_ri, b_imm = _operand_pair(instr.srcs[1])
            return (
                K_COND,
                instr,
                _tag_check_indices(instr),
                a_ri,
                a_imm,
                b_ri,
                b_imm,
                _BRANCH_CMP[op],
                instr.target,
                block_index.get(instr.target, -1),
            )
        if kind == _D_CHECK:
            dest_ri = -1 if instr.dest is None else _reg_index(instr.dest)
            return (K_CHECK, instr, _reg_index(instr.srcs[0]), dest_ri, latency(op))
        if kind == _D_CONFIRM:
            return (K_CONFIRM, instr, int(instr.srcs[0]), uid)
        if kind == _D_CLRTAG:
            dest_ri = -1 if instr.dest is None else _reg_index(instr.dest)
            return (K_CLRTAG, instr, dest_ri)
        if kind == _D_JUMP:
            return (K_JUMP, instr, instr.target, block_index.get(instr.target, -1))
        if kind == _D_HALT:
            return (K_HALT, instr)
        if kind == _D_IO:
            return (K_IO, instr, instr.origin_uid)
        if kind == _D_NOP:
            return (K_NOP, instr)
        if kind == _D_TLOAD:
            dest_ri = -1 if instr.dest is None else _reg_index(instr.dest)
            return (
                K_TLOAD,
                instr,
                _reg_index(instr.srcs[0]),
                int(instr.srcs[1]),
                dest_ri,
                latency(op),
            )
        assert kind == _D_TSTORE
        val_ri, val_imm = _operand_pair(instr.srcs[2])
        return (
            K_TSTORE,
            instr,
            _reg_index(instr.srcs[0]),
            int(instr.srcs[1]),
            val_ri,
            val_imm,
        )


def decode_scheduled(
    scheduled: ScheduledProgram, machine: MachineDescription
) -> _DecodedProgram:
    """Decode (or fetch the cached decode of) one scheduled program.

    The cache key is the machine's latency table — the only part of the
    machine description that shapes the records (issue width and buffer
    size live in the run-time state, not in the decode).
    """
    key = tuple(sorted((cls.value, lat) for cls, lat in machine.latencies.items()))
    cache = getattr(scheduled, "_fastproc_decode", None)
    if cache is None:
        cache = {}
        scheduled._fastproc_decode = cache
    decoded = cache.get(key)
    if decoded is None:
        decoded = _DecodedProgram(scheduled, machine)
        cache[key] = decoded
    return decoded


# ----------------------------------------------------------------------
# Slab store buffer.
# ----------------------------------------------------------------------

# Entry layout (plain list, mutated in place):
_E_ADDR = 0
_E_VALUE = 1
_E_CONFIRMED = 2
_E_VALID = 3
_E_EXC_TAG = 4
_E_EXC_PC = 5
_E_TRAP = 6
_E_STORE_PC = 7


class _FastStoreBuffer:
    """Table 2 store buffer over plain-list entries.

    Mirrors :class:`repro.arch.store_buffer.StoreBuffer` exactly —
    occupancy counts invalid-but-unreclaimed entries, release reclaims
    only from the head, confirm indexes valid entries from the tail — but
    avoids dataclass allocation and deque attribute chasing.  The slab is
    a growing list with a head cursor, compacted periodically.
    """

    __slots__ = ("size", "memory", "_mem_data", "entries", "head", "cancellations", "releases")

    def __init__(self, size: int, memory: Memory) -> None:
        self.size = size
        self.memory = memory
        self._mem_data = memory._data
        self.entries: List[list] = []
        self.head = 0
        self.cancellations = 0
        self.releases = 0

    def occupancy(self) -> int:
        return len(self.entries) - self.head

    def can_insert(self) -> bool:
        return len(self.entries) - self.head < self.size

    def _reclaim_invalid_head(self) -> None:
        entries = self.entries
        head = self.head
        n = len(entries)
        while head < n and not entries[head][_E_VALID]:
            head += 1
        self.head = head
        if head >= 64:
            del entries[:head]
            self.head = 0

    def search(self, address: int):
        entries = self.entries
        for i in range(len(entries) - 1, self.head - 1, -1):
            e = entries[i]
            # searchable: valid, tag clear, address present (Section 4.1).
            if e[_E_VALID] and not e[_E_EXC_TAG] and e[_E_ADDR] is not None:
                if e[_E_ADDR] == address:
                    return e[_E_VALUE]
        return None

    def release_cycle(self) -> bool:
        # Fast path: the buffer is empty on most cycles.  Nothing can be
        # released; compact the spent prefix so the slab stays small.
        if self.head >= len(self.entries):
            if self.head:
                del self.entries[:]
                self.head = 0
            return False
        self._reclaim_invalid_head()
        if self.head >= len(self.entries):
            return False
        entry = self.entries[self.head]
        if not entry[_E_CONFIRMED]:
            return False
        self.head += 1
        if entry[_E_ADDR] is not None:
            self._mem_data[entry[_E_ADDR]] = entry[_E_VALUE]
        self.releases += 1
        self._reclaim_invalid_head()
        return True

    def confirm(self, index: int, pc: int):
        """``confirm_store(index)``: ``index`` counts valid entries from
        the tail.  Returns the entry list when its recorded exception must
        be signalled, None for a clean confirmation.

        Unlike the reference buffer, the excepting entry is *not*
        invalidated here: the caller raises a :class:`_Signal` carrying the
        entry and the run loop invalidates it after any fork snapshot has
        been taken (see ``_Signal.invalidate``), so a processor forked at
        the signal point re-executes the confirm against unmutated state.
        """
        entries = self.entries
        target = None
        seen = 0
        for i in range(len(entries) - 1, self.head - 1, -1):
            e = entries[i]
            if not e[_E_VALID]:
                continue
            if seen == index:
                target = e
                break
            seen += 1
        if target is None:
            raise SimulationError(f"confirm_store({index}) at pc={pc}: no such entry")
        if not (target[_E_VALID] and not target[_E_CONFIRMED]):
            raise SimulationError(
                f"confirm_store({index}) at pc={pc} hit a non-probationary entry "
                f"(store pc={target[_E_STORE_PC]}) — bad confirm index in the schedule"
            )
        if target[_E_EXC_TAG]:
            return target
        target[_E_CONFIRMED] = True
        return None

    def cancel_probationary(self) -> int:
        count = 0
        for i in range(self.head, len(self.entries)):
            e = self.entries[i]
            if e[_E_VALID] and not e[_E_CONFIRMED]:
                e[_E_VALID] = False
                count += 1
        self.cancellations += count
        self._reclaim_invalid_head()
        return count

    def drain(self) -> None:
        self._reclaim_invalid_head()
        for i in range(self.head, len(self.entries)):
            e = self.entries[i]
            if e[_E_VALID] and not e[_E_CONFIRMED]:
                raise SimulationError(
                    f"probationary store (pc={e[_E_STORE_PC]}) left in buffer at drain"
                )
        while self.head < len(self.entries):
            self.release_cycle()


# ----------------------------------------------------------------------
# The engine.
# ----------------------------------------------------------------------


class FastProcessor:
    """Pre-decoded drop-in for :class:`repro.arch.processor.Processor`.

    Supports the tagged and silent hardware modes; boosting schedules
    (shadow register banks, Section 2.3) stay on the reference engine —
    ``run_scheduled`` routes them there automatically.
    """

    def __init__(
        self,
        scheduled: ScheduledProgram,
        machine: MachineDescription,
        memory: Optional[Memory] = None,
        on_exception: str = ABORT,
        init_regs: Optional[Dict[Register, Value]] = None,
        init_tags: Optional[Dict[Register, int]] = None,
        max_cycles: int = 5_000_000,
        max_recoveries: int = 64,
    ) -> None:
        if on_exception not in (ABORT, RECORD, RECOVER):
            raise ValueError(f"unknown exception policy {on_exception!r}")
        mode = scheduled.policy_name
        if mode.startswith("boosting"):
            raise ValueError(
                "FastProcessor does not model boosting shadow banks; "
                "use the reference Processor"
            )
        if mode not in TAGGED_MODES + SILENT_MODES:
            raise ValueError(f"unknown scheduling model {mode!r}")
        self.scheduled = scheduled
        self.machine = machine
        self.tagged_mode = mode in TAGGED_MODES
        self.colwell_mode = mode == "colwell"
        self.on_exception = on_exception
        self.memory = memory if memory is not None else Memory()
        self.max_cycles = max_cycles
        self.max_recoveries = max_recoveries
        self.decoded = decode_scheduled(scheduled, machine)

        # Flat register file: data / tag / written / ready-time arrays.
        self.data: List[Value] = [0] * _FP_BASE + [0.0] * _FP_BASE
        self.tags = bytearray(_REG_COUNT)
        self.written = bytearray(_REG_COUNT)
        self.ready: List[int] = [0] * _REG_COUNT
        if init_regs:
            for reg, value in init_regs.items():
                if reg.is_zero:
                    continue
                ri = _reg_index(reg)
                self.data[ri] = value
                self.tags[ri] = 0
                self.written[ri] = 1
        if init_tags:
            for reg, pc in init_tags.items():
                if reg.is_zero:
                    continue
                ri = _reg_index(reg)
                self.data[ri] = pc
                self.tags[ri] = 1
                self.written[ri] = 1

        self.buffer = _FastStoreBuffer(machine.store_buffer_size, self.memory)
        #: Microarchitectural timing state; None on a timing-ideal machine.
        #: Shared implementation with the reference Processor, called at
        #: the same points of the cycle loop — bit-identity by construction.
        self.timing = MicroTiming.for_run(machine, scheduled)
        if (
            machine.branches_per_cycle is not None
            or machine.memory_ops_per_cycle is not None
        ):
            for blk in scheduled.blocks:
                for cycle, word in enumerate(blk.words):
                    violation = word_resource_violation(word, machine)
                    if violation is not None:
                        raise SimulationError(
                            f"block {blk.label} cycle {cycle}: {violation}"
                        )
        self._pending_traps: Dict[Value, Trap] = {}
        self._clock = 0
        self._exceptions: List[SignalledException] = []
        self._io_events: List[int] = []
        self._dyn = 0
        self._interlock_stalls = 0
        self._buffer_stalls = 0
        self._recoveries = 0
        self._mispredictions = 0
        #: Fork support for the batch executor (:mod:`repro.arch.batchproc`):
        #: a one-shot callback fired at the *first* signal, before any
        #: policy-dependent state change, receiving
        #: ``(processor, resume_tuple, clock, signal)``.  ``_resume`` is a
        #: position/counter tuple produced by :func:`fork_processor` that
        #: makes ``run()`` continue mid-word instead of starting fresh.
        self._fork_hook = None
        self._resume: Optional[tuple] = None

    # ------------------------------------------------------------------
    # Cold paths: signal recording, RECORD disposition, recovery.
    # These mirror Processor._signal_record / _handle_signal / _recover.
    # ------------------------------------------------------------------

    def _signal_record(self, signal: _Signal) -> SignalledException:
        if signal.own and signal.trap is not None:
            kind = signal.trap.kind
        else:
            pending = self._pending_traps.get(signal.reported_pc)
            kind = pending.kind if pending is not None else TrapKind.ACCESS_VIOLATION
        pc = int(signal.reported_pc)
        origin = self.decoded.origin_by_uid.get(pc, pc)
        record = SignalledException(
            pc=pc,
            kind=kind,
            reporter_pc=signal.reporter.uid,
            origin_pc=origin,
            detail="" if signal.trap is None else signal.trap.detail,
        )
        self._exceptions.append(record)
        return record

    def _handle_signal(self, signal: _Signal):
        self._signal_record(signal)
        if self.on_exception == ABORT:
            return "abort"
        if self.on_exception == RECORD:
            if signal.own:
                reporter = signal.reporter
                if reporter.dest is not None:
                    ri = _reg_index(reporter.dest)
                    self.ready[ri] = self._clock + self.machine.latency(reporter.op)
                    if ri:
                        self.data[ri] = garbage_for(reporter.op)
                        self.tags[ri] = 0
                        self.written[ri] = 1
                return "record-skip"
            if signal.reporter.op is Opcode.CONFIRM:
                return "record-skip"
            for src in signal.reporter.srcs:
                if isinstance(src, Register) and not src.is_zero:
                    self.tags[_reg_index(src)] = 0
            return "record-reexecute"
        return self._recover(signal)

    def _recover(self, signal: _Signal):
        self._recoveries += 1
        if self._recoveries > self.max_recoveries:
            return "abort"
        pc = int(signal.reported_pc)
        trap = signal.trap if signal.own else self._pending_traps.get(pc)
        if trap is None or not trap.kind.repairable:
            return "abort"
        culprit = self.decoded.instr_by_uid.get(pc)
        if culprit is None:
            return "abort"
        if culprit.info.reads_mem or culprit.info.writes_mem:
            base = culprit.srcs[0]
            base_val = self.data[_reg_index(base)] if isinstance(base, Register) else base
            address = int(base_val) + int(culprit.srcs[1])
            self.memory.repair(address)
        else:
            return "abort"
        self._pending_traps.pop(pc, None)
        location = self.decoded.location_by_uid.get(pc)
        if location is None:
            return "abort"
        self.buffer.cancel_probationary()
        return location

    # ------------------------------------------------------------------
    # Main loop.
    # ------------------------------------------------------------------

    def run(self) -> ProcessorResult:  # noqa: C901 — deliberately monolithic
        decoded = self.decoded
        blocks = decoded.blocks
        if not blocks:
            raise SimulationError("empty scheduled program")

        # Hot state in locals.
        data = self.data
        tags = self.tags
        written = self.written
        ready = self.ready
        buffer = self.buffer
        release_cycle = buffer.release_cycle
        memory = self.memory
        mem_check = memory.check
        mem_data = memory._data
        mem_faulting = memory._faulting
        single_segment = len(memory.segments) == 1
        if single_segment:
            seg_lo, seg_hi = memory.segments[0]
        else:
            seg_lo = seg_hi = 0
        tagged_mode = self.tagged_mode
        colwell_mode = self.colwell_mode
        pending_traps = self._pending_traps
        io_events = self._io_events
        max_cycles = self.max_cycles
        stall_limit = self.machine.store_buffer_size + 32
        isnan = math.isnan

        clock = self._clock
        halted = False
        aborted = False
        fork_hook = self._fork_hook
        resume = self._resume
        timing = self.timing
        #: Mirrors the reference engine: a word's front-end cost is charged
        #: exactly once, at its first fetch.
        fetch_pending = resume is None
        fetch_redirect = False
        if resume is None:
            dyn = 0
            interlock_stalls = 0
            buffer_stalls = 0
            mispredictions = 0
            block_idx = 0
            word_idx = 0
            slot_idx = 0
            stall_watchdog = 0
            pending_taken: Optional[str] = None
            pending_bidx = -1
            pending_taken_conditional = False
        else:
            # Mid-run transplant (fork/spill from the batch executor): the
            # loop re-enters at the recorded position with the recorded
            # counters, exactly like the engine's own post-signal re-entry.
            self._resume = None
            (
                block_idx,
                word_idx,
                slot_idx,
                pending_taken,
                pending_bidx,
                pending_taken_conditional,
                dyn,
                interlock_stalls,
                buffer_stalls,
                mispredictions,
                stall_watchdog,
            ) = resume

        while True:
            block = blocks[block_idx]
            words = block.words
            if word_idx >= len(words):
                if not block.falls_through:
                    raise SimulationError(
                        f"control fell off non-fall-through block {block.label}"
                    )
                if block_idx + 1 >= len(blocks):
                    raise SimulationError("control fell off the end of the program")
                block_idx += 1
                word_idx = 0
                slot_idx = 0
                continue

            word = words[word_idx]
            records = word.records
            n_slots = len(records)

            if fetch_pending:
                fetch_pending = False
                if timing is not None:
                    for _ in range(
                        timing.fetch_word(block_idx, word_idx, n_slots, fetch_redirect)
                    ):
                        release_cycle()
                        clock += 1
                        if clock > max_cycles:
                            raise SimulationError(
                                f"cycle limit {max_cycles} exceeded"
                            )

            # CRAY-1 interlock over the remaining slots' sources.
            needed = clock
            for ri in word.interlock[slot_idx] if slot_idx < n_slots else ():
                t = ready[ri]
                if t > needed:
                    needed = t
            while clock < needed:
                interlock_stalls += 1
                release_cycle()
                clock += 1
                if clock > max_cycles:
                    raise SimulationError(f"cycle limit {max_cycles} exceeded")

            if slot_idx == 0:
                pending_taken = None
                pending_bidx = -1
                pending_taken_conditional = False
            outcome: Optional[_Signal] = None
            stalled = False
            slot = slot_idx
            while slot < n_slots:
                rec = records[slot]
                kind = rec[0]
                taken: Optional[str] = None
                taken_bidx = -1
                taken_conditional = False
                try:
                    if kind == K_ALU:
                        (_, instr, spec, chk, a_ri, a_imm, b_ri, b_imm,
                         dest_ri, lat, uid, fn) = rec
                        if tagged_mode:
                            tagged_data = None
                            for ri in chk:
                                if tags[ri]:
                                    tagged_data = data[ri]
                                    break
                            if tagged_data is not None:
                                if not spec:
                                    raise _Signal(tagged_data, False, None, instr)
                                # Table 1 rows 6: propagate the tag.
                                if dest_ri >= 0:
                                    ready[dest_ri] = clock + lat
                                    if dest_ri:
                                        data[dest_ri] = tagged_data
                                        tags[dest_ri] = 1
                                        written[dest_ri] = 1
                                dyn += 1
                                slot += 1
                                continue
                        result = fn(
                            data[a_ri] if a_ri >= 0 else a_imm,
                            data[b_ri] if b_ri >= 0 else b_imm,
                        )
                        if dest_ri >= 0:
                            ready[dest_ri] = clock + lat
                            if dest_ri:
                                data[dest_ri] = result
                                tags[dest_ri] = 0
                                written[dest_ri] = 1
                    elif kind == K_LOAD:
                        (_, instr, op, spec, chk, base_ri, off, dest_ri,
                         is_fload, lat, uid) = rec
                        if tagged_mode:
                            tagged_data = None
                            for ri in chk:
                                if tags[ri]:
                                    tagged_data = data[ri]
                                    break
                            if tagged_data is not None:
                                if not spec:
                                    raise _Signal(tagged_data, False, None, instr)
                                if dest_ri >= 0:
                                    ready[dest_ri] = clock + lat
                                    if dest_ri:
                                        data[dest_ri] = tagged_data
                                        tags[dest_ri] = 1
                                        written[dest_ri] = 1
                                dyn += 1
                                slot += 1
                                continue
                        address = int(data[base_ri]) + off
                        if single_segment and seg_lo <= address < seg_hi:
                            fk = mem_faulting.get(address)
                            trap = None if fk is None else Trap(fk, address=address)
                        else:
                            trap = mem_check(address)
                        extra = 0
                        if trap is None:
                            value = buffer.search(address)
                            if value is None:
                                value = mem_data.get(address, 0)
                                # Only an actual memory read probes the
                                # D-cache (mirrors the reference engine).
                                if timing is not None:
                                    extra = timing.load_extra(address)
                            if is_fload and isinstance(value, int):
                                value = float(value)
                        else:
                            value = None
                        if tagged_mode:
                            if not spec:
                                if trap is not None:
                                    raise _Signal(uid, True, trap, instr)
                                if dest_ri >= 0:
                                    ready[dest_ri] = clock + lat + extra
                                    if dest_ri:
                                        data[dest_ri] = value
                                        tags[dest_ri] = 0
                                        written[dest_ri] = 1
                            else:
                                if trap is not None:
                                    pending_traps[uid] = trap
                                    if dest_ri >= 0:
                                        ready[dest_ri] = clock + lat
                                        if dest_ri:
                                            data[dest_ri] = uid
                                            tags[dest_ri] = 1
                                            written[dest_ri] = 1
                                else:
                                    if dest_ri >= 0:
                                        ready[dest_ri] = clock + lat + extra
                                        if dest_ri:
                                            data[dest_ri] = value
                                            tags[dest_ri] = 0
                                            written[dest_ri] = 1
                        else:
                            if colwell_mode and not spec:
                                # loads can trap; NaN operand check.
                                for ri in chk:
                                    v = data[ri]
                                    if (
                                        isnan(v)
                                        if isinstance(v, float)
                                        else v == INT_NAN
                                    ):
                                        raise _Signal(
                                            uid,
                                            True,
                                            Trap(
                                                TrapKind.FP_INVALID,
                                                detail="NaN detected (colwell)",
                                            ),
                                            instr,
                                        )
                            if trap is not None:
                                if spec:
                                    if colwell_mode:
                                        poison = GARBAGE_FP if is_fload else INT_NAN
                                    else:
                                        poison = GARBAGE_FP if is_fload else GARBAGE_INT
                                    if dest_ri >= 0:
                                        ready[dest_ri] = clock + lat
                                        if dest_ri:
                                            data[dest_ri] = poison
                                            tags[dest_ri] = 0
                                            written[dest_ri] = 1
                                else:
                                    raise _Signal(uid, True, trap, instr)
                            else:
                                if dest_ri >= 0:
                                    ready[dest_ri] = clock + lat + extra
                                    if dest_ri:
                                        data[dest_ri] = value
                                        tags[dest_ri] = 0
                                        written[dest_ri] = 1
                    elif kind == K_COMPUTE:
                        (_, instr, op, spec, chk, operands, dest_ri, can_trap,
                         poison_val, lat, uid) = rec
                        if tagged_mode:
                            tagged_data = None
                            for ri in chk:
                                if tags[ri]:
                                    tagged_data = data[ri]
                                    break
                            if tagged_data is not None:
                                if not spec:
                                    raise _Signal(tagged_data, False, None, instr)
                                if dest_ri >= 0:
                                    ready[dest_ri] = clock + lat
                                    if dest_ri:
                                        data[dest_ri] = tagged_data
                                        tags[dest_ri] = 1
                                        written[dest_ri] = 1
                                dyn += 1
                                slot += 1
                                continue
                        vals = [
                            data[ri] if ri >= 0 else imm for ri, imm in operands
                        ]
                        result, trap = evaluate(op, vals)
                        if tagged_mode:
                            if not spec:
                                if trap is not None:
                                    raise _Signal(uid, True, trap, instr)
                                if dest_ri >= 0:
                                    ready[dest_ri] = clock + lat
                                    if dest_ri:
                                        data[dest_ri] = result
                                        tags[dest_ri] = 0
                                        written[dest_ri] = 1
                            else:
                                if trap is not None:
                                    pending_traps[uid] = trap
                                    if dest_ri >= 0:
                                        ready[dest_ri] = clock + lat
                                        if dest_ri:
                                            data[dest_ri] = uid
                                            tags[dest_ri] = 1
                                            written[dest_ri] = 1
                                else:
                                    if dest_ri >= 0:
                                        ready[dest_ri] = clock + lat
                                        if dest_ri:
                                            data[dest_ri] = result
                                            tags[dest_ri] = 0
                                            written[dest_ri] = 1
                        else:
                            if colwell_mode and not spec and can_trap:
                                for ri in chk:
                                    v = data[ri]
                                    if (
                                        isnan(v)
                                        if isinstance(v, float)
                                        else v == INT_NAN
                                    ):
                                        raise _Signal(
                                            uid,
                                            True,
                                            Trap(
                                                TrapKind.FP_INVALID,
                                                detail="NaN detected (colwell)",
                                            ),
                                            instr,
                                        )
                            if trap is not None:
                                if spec:
                                    poison = poison_val if colwell_mode else result
                                    if dest_ri >= 0:
                                        ready[dest_ri] = clock + lat
                                        if dest_ri:
                                            data[dest_ri] = poison
                                            tags[dest_ri] = 0
                                            written[dest_ri] = 1
                                else:
                                    raise _Signal(uid, True, trap, instr)
                            else:
                                if dest_ri >= 0:
                                    ready[dest_ri] = clock + lat
                                    if dest_ri:
                                        data[dest_ri] = result
                                        tags[dest_ri] = 0
                                        written[dest_ri] = 1
                    elif kind == K_STORE:
                        (_, instr, spec, chk, base_ri, off, val_ri, val_imm,
                         uid) = rec
                        if not tagged_mode and spec:
                            raise SimulationError(
                                f"speculative store {uid} under a silent-mode schedule"
                            )
                        tagged_data = None
                        if tagged_mode:
                            for ri in chk:
                                if tags[ri]:
                                    tagged_data = data[ri]
                                    break
                        address = None
                        value = None
                        trap = None
                        if tagged_data is None:
                            address = int(data[base_ri]) + off
                            value = data[val_ri] if val_ri >= 0 else val_imm
                            if single_segment and seg_lo <= address < seg_hi:
                                fk = mem_faulting.get(address)
                                trap = (
                                    None if fk is None else Trap(fk, address=address)
                                )
                            else:
                                trap = mem_check(address)
                        if not tagged_mode:
                            if colwell_mode:
                                # stores can trap; NaN operand check (spec
                                # stores already errored above).
                                for ri in chk:
                                    v = data[ri]
                                    if (
                                        isnan(v)
                                        if isinstance(v, float)
                                        else v == INT_NAN
                                    ):
                                        raise _Signal(
                                            uid,
                                            True,
                                            Trap(
                                                TrapKind.FP_INVALID,
                                                detail="NaN detected (colwell)",
                                            ),
                                            instr,
                                        )
                            if trap is not None:
                                raise _Signal(uid, True, trap, instr)
                            if not buffer.can_insert():
                                raise _StallStore()
                            # Row (0,0,0): confirmed entry.
                            buffer.entries.append(
                                [address, value, True, True, False, None, None, uid]
                            )
                        else:
                            # Table 2; insertion rows need a free slot.
                            will_insert = spec or (
                                tagged_data is None and trap is None
                            )
                            if will_insert and not buffer.can_insert():
                                raise _StallStore()
                            if not spec:
                                if tagged_data is not None:
                                    # Rows (0,1,*): sentinel store.
                                    raise _Signal(tagged_data, False, trap, instr)
                                if trap is not None:
                                    # Row (0,0,1): precise store exception.
                                    raise _Signal(uid, True, trap, instr)
                                buffer.entries.append(
                                    [address, value, True, True, False, None, None, uid]
                                )
                            else:
                                if tagged_data is not None:
                                    # Rows (1,1,*): propagate the tag.
                                    buffer.entries.append(
                                        [None, None, False, True, True,
                                         tagged_data, None, uid]
                                    )
                                elif trap is not None:
                                    # Row (1,0,1): record the store's own fault.
                                    buffer.entries.append(
                                        [address, value, False, True, True,
                                         uid, trap, uid]
                                    )
                                    pending_traps[uid] = trap
                                else:
                                    # Row (1,0,0): clean pending entry.
                                    buffer.entries.append(
                                        [address, value, False, True, False,
                                         None, None, uid]
                                    )
                    elif kind == K_COND:
                        (_, instr, chk, a_ri, a_imm, b_ri, b_imm, cmp,
                         target, target_bidx) = rec
                        if tagged_mode:
                            for ri in chk:
                                if tags[ri]:
                                    raise _Signal(data[ri], False, None, instr)
                        a = data[a_ri] if a_ri >= 0 else a_imm
                        b = data[b_ri] if b_ri >= 0 else b_imm
                        branch_went = cmp(a, b)
                        if timing is not None:
                            timing.branch_resolved(instr.uid, branch_went)
                        if branch_went:
                            taken = target
                            taken_bidx = target_bidx
                            taken_conditional = True
                    elif kind == K_CHECK:
                        _, instr, src_ri, dest_ri, lat = rec
                        if tagged_mode and tags[src_ri]:
                            raise _Signal(data[src_ri], False, None, instr)
                        if dest_ri >= 0:
                            ready[dest_ri] = clock + lat
                            if dest_ri:
                                data[dest_ri] = data[src_ri]
                                tags[dest_ri] = 0
                                written[dest_ri] = 1
                    elif kind == K_CONFIRM:
                        _, instr, index, uid = rec
                        entry = buffer.confirm(index, uid)
                        if entry is not None:
                            signal = _Signal(
                                entry[_E_EXC_PC], False, entry[_E_TRAP], instr
                            )
                            signal.invalidate = entry
                            raise signal
                    elif kind == K_CLRTAG:
                        dest_ri = rec[2]
                        if dest_ri >= 0:
                            tags[dest_ri] = 0
                    elif kind == K_JUMP:
                        taken = rec[2]
                        taken_bidx = rec[3]
                    elif kind == K_HALT:
                        taken = "__halt__"
                    elif kind == K_IO:
                        io_events.append(rec[2])
                    elif kind == K_TLOAD:
                        _, instr, base_ri, off, dest_ri, lat = rec
                        address = int(data[base_ri]) + off
                        value, tag = memory.peek_tagged(address)
                        if dest_ri >= 0:
                            ready[dest_ri] = clock + lat
                            if dest_ri:
                                data[dest_ri] = value
                                tags[dest_ri] = 1 if (tag and tagged_mode) else 0
                                written[dest_ri] = 1
                    elif kind == K_TSTORE:
                        _, instr, base_ri, off, val_ri, val_imm = rec
                        address = int(data[base_ri]) + off
                        if val_ri >= 0:
                            memory.poke_tagged(
                                address, data[val_ri], bool(tags[val_ri])
                            )
                        else:
                            memory.poke_tagged(address, val_imm, False)
                    # else: K_NOP — nothing.
                except _StallStore:
                    stalled = True
                    break
                except _Signal as signal:
                    if fork_hook is not None:
                        # First signal of the run: snapshot point for the
                        # batch executor's policy forks.  Fired before the
                        # signalling record mutates anything (the record's
                        # own ``dyn`` increment included), so a forked
                        # processor re-executes it bit-identically.
                        fork_hook(
                            self,
                            (
                                block_idx,
                                word_idx,
                                slot,
                                pending_taken,
                                pending_bidx,
                                pending_taken_conditional,
                                dyn,
                                interlock_stalls,
                                buffer_stalls,
                                mispredictions,
                                stall_watchdog,
                            ),
                            clock,
                            signal,
                        )
                        fork_hook = self._fork_hook = None
                    if signal.invalidate is not None:
                        signal.invalidate[_E_VALID] = False
                    dyn += 1
                    outcome = signal
                    break
                dyn += 1
                if taken is not None:
                    if pending_taken is not None:
                        raise SimulationError("two taken branches in one word")
                    pending_taken = taken
                    pending_bidx = taken_bidx
                    pending_taken_conditional = taken_conditional
                slot += 1

            if stalled:
                slot_idx = slot
                buffer_stalls += 1
                stall_watchdog += 1
                if stall_watchdog > stall_limit:
                    raise SimulationError(
                        "store buffer deadlock: head probationary and no "
                        "confirm in flight (N-1 separation violated?)"
                    )
                release_cycle()
                clock += 1
                if clock > max_cycles:
                    raise SimulationError(f"cycle limit {max_cycles} exceeded")
                continue
            stall_watchdog = 0

            if outcome is not None:
                self._clock = clock
                self._sync_counters(dyn, interlock_stalls, buffer_stalls, mispredictions)
                disposition = self._handle_signal(outcome)
                if disposition == "abort":
                    aborted = True
                    release_cycle()
                    clock += 1
                    if clock > max_cycles:
                        raise SimulationError(f"cycle limit {max_cycles} exceeded")
                    break
                if isinstance(disposition, tuple):
                    block_idx, word_idx, slot_idx = disposition
                    pending_taken = None
                    pending_bidx = -1
                    pending_taken_conditional = False
                    fetch_pending = True
                    fetch_redirect = True
                    release_cycle()
                    clock += 1
                    if clock > max_cycles:
                        raise SimulationError(f"cycle limit {max_cycles} exceeded")
                    continue
                slot_idx = slot if disposition == "record-reexecute" else slot + 1
                if slot_idx < n_slots:
                    continue
                # fall through: the word completed despite the signal

            release_cycle()  # the word consumed its cycle
            clock += 1
            if clock > max_cycles:
                raise SimulationError(f"cycle limit {max_cycles} exceeded")
            if pending_taken == "__halt__":
                halted = True
                break
            if pending_taken is not None:
                buffer.cancel_probationary()
                if pending_taken_conditional:
                    mispredictions += 1
                if pending_bidx < 0:
                    raise KeyError(pending_taken)
                block_idx = pending_bidx
                word_idx = 0
                slot_idx = 0
                fetch_pending = True
                fetch_redirect = True
            else:
                word_idx += 1
                slot_idx = 0
                fetch_pending = True
                fetch_redirect = False

        if halted:
            buffer.drain()
        self._clock = clock
        registers = {
            _REG_OBJECTS[i]: data[i] for i in range(_REG_COUNT) if written[i]
        }
        fetch_stalls = 0 if timing is None else timing.fetch_stalls
        return ProcessorResult(
            registers=registers,
            memory=self.memory,
            exceptions=self._exceptions,
            cycles=clock,
            dynamic_instructions=dyn,
            halted=halted,
            aborted=aborted,
            io_events=io_events,
            stall_cycles=interlock_stalls + buffer_stalls + fetch_stalls,
            interlock_stalls=interlock_stalls,
            store_buffer_stalls=buffer_stalls,
            recoveries=self._recoveries,
            mispredictions=mispredictions,
            cancelled_stores=buffer.cancellations,
            fetch_stalls=fetch_stalls,
            branch_mispredicts=0 if timing is None else timing.branch_mispredicts,
            icache_misses=0 if timing is None else timing.icache_misses,
            dcache_misses=0 if timing is None else timing.dcache_misses,
        )

    def _sync_counters(self, dyn, interlock, bufstalls, mispred) -> None:
        """Flush hot-loop locals into attributes before a cold-path call."""
        self._dyn = dyn
        self._interlock_stalls = interlock
        self._buffer_stalls = bufstalls
        self._mispredictions = mispred


def fork_processor(
    proc: FastProcessor, resume: tuple, clock: int, on_exception: str
) -> FastProcessor:
    """Clone a mid-run :class:`FastProcessor` into a resumable twin.

    Called from a ``_fork_hook`` at the first signal of a coalesced run
    (:mod:`repro.arch.batchproc`): every policy of the batch shares the
    signal-free prefix bit for bit, so the clone — deep copies of the
    register file, store buffer, pending traps and memory, plus the hook's
    position/counter tuple — continues under ``on_exception`` exactly as a
    from-scratch run of that policy would.  ``resume`` is the position
    tuple the hook received; ``clock`` is the live cycle count (the
    instance attribute is only synced on cold paths and may be stale).
    """
    if on_exception not in (ABORT, RECORD, RECOVER):
        raise ValueError(f"unknown exception policy {on_exception!r}")
    if proc.timing is not None:
        # The batch executor routes non-ideal-timing machines to per-cell
        # runs, so a fork never has predictor/cache state to clone.
        raise SimulationError(
            "cannot fork a processor with microarchitectural timing state"
        )
    clone = FastProcessor.__new__(FastProcessor)
    clone.scheduled = proc.scheduled
    clone.machine = proc.machine
    clone.timing = None
    clone.tagged_mode = proc.tagged_mode
    clone.colwell_mode = proc.colwell_mode
    clone.on_exception = on_exception
    clone.memory = proc.memory.clone()
    clone.max_cycles = proc.max_cycles
    clone.max_recoveries = proc.max_recoveries
    clone.decoded = proc.decoded
    clone.data = list(proc.data)
    clone.tags = bytearray(proc.tags)
    clone.written = bytearray(proc.written)
    clone.ready = list(proc.ready)
    buffer = _FastStoreBuffer(proc.buffer.size, clone.memory)
    buffer.entries = [list(entry) for entry in proc.buffer.entries]
    buffer.head = proc.buffer.head
    buffer.cancellations = proc.buffer.cancellations
    buffer.releases = proc.buffer.releases
    clone.buffer = buffer
    clone._pending_traps = dict(proc._pending_traps)
    clone._clock = clock
    clone._exceptions = list(proc._exceptions)
    clone._io_events = list(proc._io_events)
    clone._dyn = 0
    clone._interlock_stalls = 0
    clone._buffer_stalls = 0
    clone._recoveries = proc._recoveries
    clone._mispredictions = 0
    clone._fork_hook = None
    clone._resume = resume
    return clone
