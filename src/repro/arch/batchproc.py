"""Vectorized lockstep batch executor for independent simulation cells.

The fuzz oracle and the eval sweep run thousands of independent
(program x policy x issue-rate) *cells*.  This module executes many
cells at once through three cooperating strategies, all pinned
bit-identical to :class:`~repro.arch.fastproc.FastProcessor` (and hence
to the reference :class:`~repro.arch.processor.Processor`):

**Coalescing** (:func:`_run_coalesced`): cells that share a schedule,
machine and initial memory *content* but differ only in exception policy
are one physical run.  Engines consult ``on_exception`` only when a
signal fires, so the signal-free prefix of every policy is bit-identical
(the policy-invariance property the differential suite pins).  The host
cell runs with a one-shot ``_fork_hook``; at the first signal the hook
clones the processor once per remaining policy
(:func:`~repro.arch.fastproc.fork_processor`) and each clone resumes
mid-word under its own policy.  A run with no signal is shared outright
— one execution serves every policy.

**Lockstep** (:func:`run_lockstep`): cells that share a schedule (and
memory *mapping* — segments and fault plan — but not memory content)
advance through the decoded word stream together, columnar-style:

- register data / tag / written files are 2-D numpy arrays of shape
  ``(n_active, n_regs)``, *compacted* — retired and spilled rows are
  physically removed and ``rows`` maps compact index back to cell;
- memory is three read layers: a ``written_mem`` overlay of store
  columns, per-address *init columns* where the cells' initial images
  differ, and a shared scalar image where they agree.  Per-row dicts are
  reconstructed only when a row leaves the batch;
- there is ONE store buffer for the whole batch
  (:class:`_ColBuffer`): converged rows are on the same cycle of the
  same word, so addresses, occupancy, confirm indices and release
  bookkeeping are shared — only the value of each entry is a per-row
  column.  ``release_cycle`` runs once per cycle, not once per row;
- never-trapping integer ALU records, FP arithmetic (with exact
  NaN/overflow trap masks mirroring ``evaluate``), loads and stores to
  a batch-uniform address, branches and tag scans all dispatch once per
  record across every active row.

Shared scalars (clock, dynamic instruction count, interlock stalls, the
ready-time file, pending speculative traps) stay scalar by construction.
The moment a row diverges — a signal, a store-buffer stall, a branch or
store address the majority did not take, a per-row pending trap, a value
numpy cannot represent — it *spills*: its scalar memory and buffer are
materialized from the columns and a :class:`FastProcessor` resumes the
row mid-word (``_resume``), exactly like the engine's own post-signal
re-entry.  Branch divergence is resolved at word boundaries: the largest
outcome group stays in lockstep, the rest spill.

**Fallback**: anything the batch engine cannot express — boosting
schedules (shadow banks), ``REPRO_FAST_PROC=0`` (reference engine
requested), initial register files, missing numpy — runs per-cell
through the ordinary single-cell path.

Escape hatches: ``run_batch(..., batch=False)``, the ``--no-batch-proc``
CLI flag, and ``REPRO_BATCH_PROC=0`` in the environment all force the
per-cell path.  The executor choice never reaches the compile cache:
batching happens strictly after scheduling, on decoded programs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional

try:  # soft dependency: the lockstep engine needs numpy, nothing else does
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via batch_default()
    _np = None

from ..isa.opcodes import Opcode
from ..isa.registers import Register
from ..isa.semantics import GARBAGE_FP, GARBAGE_INT, evaluate
from ..machine.description import MachineDescription
from ..sched.schedule import ScheduledProgram
from .exceptions import ABORT, RECORD, RECOVER, SimulationError, Trap
from .fastproc import (
    _E_ADDR,
    _E_CONFIRMED,
    _E_EXC_TAG,
    _E_STORE_PC,
    _E_VALID,
    _E_VALUE,
    _FP_BASE,
    _REG_COUNT,
    _REG_OBJECTS,
    _FastStoreBuffer,
    FastProcessor,
    K_ALU,
    K_CHECK,
    K_CLRTAG,
    K_COMPUTE,
    K_COND,
    K_CONFIRM,
    K_HALT,
    K_IO,
    K_JUMP,
    K_LOAD,
    K_NOP,
    K_STORE,
    K_TLOAD,
    K_TSTORE,
    decode_scheduled,
    fork_processor,
)
from .memory import Memory
from .processor import (
    INT_NAN,
    SILENT_MODES,
    TAGGED_MODES,
    ProcessorResult,
    Value,
    run_scheduled,
    _fast_default,
)

__all__ = [
    "BatchCell",
    "BATCH_COUNTERS",
    "batch_default",
    "reset_counters",
    "counters_snapshot",
    "run_batch",
    "run_lockstep",
]

_POLICIES = (ABORT, RECORD, RECOVER)

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1
#: Base registers beyond this magnitude take the scalar path: adding the
#: offset in int64 could wrap where unbounded python ints would not.
_ADDR_LIM = 1 << 62
_S63F = float(1 << 63)

#: Observability counters for the batch executor (fallback-rate reporting).
#: Additive across calls; campaign shards merge them per process.
BATCH_COUNTERS: Dict[str, int] = {}


def reset_counters() -> None:
    BATCH_COUNTERS.clear()


def counters_snapshot() -> Dict[str, int]:
    return dict(BATCH_COUNTERS)


def _count(key: str, n: int = 1) -> None:
    BATCH_COUNTERS[key] = BATCH_COUNTERS.get(key, 0) + n


def batch_default() -> bool:
    """Batched execution is the default wherever numpy is importable;
    ``REPRO_BATCH_PROC=0`` is the suite-wide escape hatch."""
    if os.environ.get("REPRO_BATCH_PROC", "") == "0":
        return False
    return _np is not None


@dataclass
class BatchCell:
    """One independent simulation: the arguments of a ``run_scheduled`` call.

    ``memory`` is owned by the cell and mutated by the run, exactly like
    the single-cell API.  Results are aligned to the input order of
    :func:`run_batch`; coalesced cells may *share* one result object
    (its ``memory`` field is then the host cell's memory — equal in
    content, not identity, to the other cells' memories).
    """

    scheduled: ScheduledProgram
    machine: MachineDescription
    memory: Memory
    on_exception: str = ABORT
    init_regs: Optional[Dict[Register, Value]] = None
    init_tags: Optional[Dict[Register, int]] = None
    max_cycles: int = 5_000_000
    max_recoveries: int = 64


def _run_single(cell: BatchCell):
    """The per-cell fallback: identical to a direct engine call."""
    _count("cells_fallback")
    try:
        if _fast_default() and not cell.scheduled.policy_name.startswith("boosting"):
            return FastProcessor(
                cell.scheduled,
                cell.machine,
                memory=cell.memory,
                on_exception=cell.on_exception,
                init_regs=cell.init_regs,
                init_tags=cell.init_tags,
                max_cycles=cell.max_cycles,
                max_recoveries=cell.max_recoveries,
            ).run()
        return run_scheduled(
            cell.scheduled,
            cell.machine,
            memory=cell.memory,
            on_exception=cell.on_exception,
            init_regs=cell.init_regs,
            init_tags=cell.init_tags,
            max_cycles=cell.max_cycles,
        )
    except SimulationError as exc:
        return exc


def _latency_key(machine: MachineDescription) -> tuple:
    return tuple(sorted((cls.value, lat) for cls, lat in machine.latencies.items()))


def _memory_key(memory: Memory) -> tuple:
    """Content key for coalescing.  NaN payloads compare unequal, which
    conservatively splits such memories into separate classes — correct,
    merely less shared."""
    return (
        tuple(memory.segments),
        tuple(sorted(memory._data.items())),
        tuple(sorted(memory._faulting.items())),
        tuple(sorted(memory._tag_bits.items())),
    )


# ----------------------------------------------------------------------
# Coalescing: one run serves every policy of one (schedule, memory) cell.
# ----------------------------------------------------------------------


def _run_coalesced(cells: List[BatchCell]):
    """Run cells identical up to ``on_exception`` as one host + forks.

    The host executes under the first cell's policy with a one-shot fork
    hook; at the first signal the hook snapshots one clone per remaining
    distinct policy, each of which then resumes under its own policy.
    If no signal ever fires the host result is policy-invariant and is
    shared by every cell.
    """
    host = cells[0]
    policies = []
    for cell in cells:
        if cell.on_exception not in policies:
            policies.append(cell.on_exception)
    forks: Dict[str, FastProcessor] = {}

    def hook(proc, resume, clock, signal):
        for policy in policies[1:]:
            forks[policy] = fork_processor(proc, resume, clock, policy)

    proc = FastProcessor(
        host.scheduled,
        host.machine,
        memory=host.memory,
        on_exception=host.on_exception,
        max_cycles=host.max_cycles,
        max_recoveries=host.max_recoveries,
    )
    proc._fork_hook = hook
    try:
        host_result = proc.run()
    except SimulationError as exc:
        host_result = exc

    by_policy = {policies[0]: host_result}
    for policy, clone in forks.items():
        try:
            by_policy[policy] = clone.run()
        except SimulationError as exc:
            by_policy[policy] = exc
    if not forks:
        # Signal-free run: bit-identical under every policy.
        for policy in policies[1:]:
            by_policy[policy] = host_result

    out = []
    for i, cell in enumerate(cells):
        if i:
            _count("cells_shared" if cell.on_exception not in forks else "cells_forked")
        out.append(by_policy[cell.on_exception])
    _count("cells_coalesced", len(cells))
    _count("coalesced_runs")
    return out


# ----------------------------------------------------------------------
# Lockstep numpy engine.
# ----------------------------------------------------------------------

if _np is not None:
    _U63 = _np.uint64(63)

    def _vu(a):
        return a.view(_np.uint64)

    def _v_add(a, b):
        return (_vu(a) + _vu(b)).view(_np.int64)

    def _v_sub(a, b):
        return (_vu(a) - _vu(b)).view(_np.int64)

    def _v_sll(a, b):
        return (_vu(a) << (_vu(b) & _U63)).view(_np.int64)

    def _v_srl(a, b):
        return (_vu(a) >> (_vu(b) & _U63)).view(_np.int64)

    def _v_mul(a, b):
        return (_vu(a) * _vu(b)).view(_np.int64)

    #: Vector twins of fastproc's ``_FAST_ALU`` over int64 rows.  Exactness:
    #: uint64 views give mod-2^64 arithmetic, the reinterpreting view back
    #: to int64 *is* ``wrap64``; int64 ``>>`` is arithmetic shift; register
    #: values are wrap64-normalized so the int() coercions of the scalar
    #: forms are identities here (float-valued operands take the scalar
    #: path — see the K_ALU handler).
    _VEC_ALU = {
        Opcode.ADD: _v_add,
        Opcode.SUB: _v_sub,
        Opcode.AND: lambda a, b: a & b,
        Opcode.OR: lambda a, b: a | b,
        Opcode.XOR: lambda a, b: a ^ b,
        Opcode.NOR: lambda a, b: ~(a | b),
        Opcode.SLL: _v_sll,
        Opcode.SRL: _v_srl,
        Opcode.SRA: lambda a, b: a >> (b & 63),
        Opcode.SLT: lambda a, b: (a < b).astype(_np.int64),
        Opcode.SLTU: lambda a, b: (_vu(a) < _vu(b)).astype(_np.int64),
        Opcode.MUL: _v_mul,
        Opcode.MOV: lambda a, b: a.copy(),
    }
else:  # pragma: no cover
    _VEC_ALU = {}

_FP_BIN_OPS = (Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV)
_FP_CMP_OPS = (Opcode.FCLT, Opcode.FCLE, Opcode.FCEQ)


def _imm_i64(imm) -> bool:
    return isinstance(imm, int) and _I64_MIN <= imm <= _I64_MAX


def _cget(col, r: int):
    """Row ``r``'s scalar from a column value.

    A column is one of: a shared python scalar (all rows equal), a numpy
    array indexed by *original* row, or a python list likewise (mixed
    types or values int64 cannot hold).
    """
    if isinstance(col, _np.ndarray):
        v = col[r]
        return float(v) if col.dtype == _np.float64 else int(v)
    if isinstance(col, list):
        return col[r]
    return col


def _make_column(values: list):
    """Pack per-row python values into the densest exact representation."""
    has_float = False
    for v in values:
        t = type(v)
        if t is float:
            has_float = True
        elif t is not int:
            return list(values)
    if has_float:
        for v in values:
            if type(v) is not float:
                return list(values)
        return _np.array(values, dtype=_np.float64)
    for v in values:
        if not _I64_MIN <= v <= _I64_MAX:
            return list(values)
    return _np.array(values, dtype=_np.int64)


class _Spill(Exception):
    """Internal: row must leave the lockstep batch at the current slot."""


class _ColBuffer:
    """The batch's single store buffer: shared Table 2 bookkeeping over
    per-row value columns.

    Mirrors :class:`_FastStoreBuffer` field for field.  Lockstep rows are
    on the same cycle of the same word with the same store addresses
    (divergent rows spill *before* any shared mutation), so entry
    addresses, validity/confirm flags, head cursor and counters are
    row-invariant; only ``_E_VALUE`` differs per row and is stored as a
    column.  Releases land in the owner's ``written_mem`` overlay.
    """

    __slots__ = ("size", "owner", "entries", "head", "cancellations", "releases")

    def __init__(self, size: int, owner: "_Lockstep") -> None:
        self.size = size
        self.owner = owner
        self.entries: List[list] = []
        self.head = 0
        self.cancellations = 0
        self.releases = 0

    def occupancy(self) -> int:
        return len(self.entries) - self.head

    def can_insert(self) -> bool:
        return len(self.entries) - self.head < self.size

    def _reclaim_invalid_head(self) -> None:
        entries = self.entries
        head = self.head
        n = len(entries)
        while head < n and not entries[head][_E_VALID]:
            head += 1
        self.head = head
        if head >= 64:
            del entries[:head]
            self.head = 0

    def search(self, address: int):
        """Newest searchable entry's value *column* for ``address``."""
        entries = self.entries
        for i in range(len(entries) - 1, self.head - 1, -1):
            e = entries[i]
            if e[_E_VALID] and not e[_E_EXC_TAG] and e[_E_ADDR] is not None:
                if e[_E_ADDR] == address:
                    return e[_E_VALUE]
        return None

    def release_cycle(self) -> bool:
        if self.head >= len(self.entries):
            if self.head:
                del self.entries[:]
                self.head = 0
            return False
        self._reclaim_invalid_head()
        if self.head >= len(self.entries):
            return False
        entry = self.entries[self.head]
        if not entry[_E_CONFIRMED]:
            return False
        self.head += 1
        if entry[_E_ADDR] is not None:
            self.owner.written_mem[entry[_E_ADDR]] = entry[_E_VALUE]
        self.releases += 1
        self._reclaim_invalid_head()
        return True

    def confirm(self, index: int, pc: int):
        """Identical to :meth:`_FastStoreBuffer.confirm` (excepting entry
        returned *without* invalidation — the whole batch then spills and
        each resumed engine re-runs the confirm against unmutated state)."""
        entries = self.entries
        target = None
        seen = 0
        for i in range(len(entries) - 1, self.head - 1, -1):
            e = entries[i]
            if not e[_E_VALID]:
                continue
            if seen == index:
                target = e
                break
            seen += 1
        if target is None:
            raise SimulationError(f"confirm_store({index}) at pc={pc}: no such entry")
        if not (target[_E_VALID] and not target[_E_CONFIRMED]):
            raise SimulationError(
                f"confirm_store({index}) at pc={pc} hit a non-probationary entry "
                f"(store pc={target[_E_STORE_PC]}) — bad confirm index in the schedule"
            )
        if target[_E_EXC_TAG]:
            return target
        target[_E_CONFIRMED] = True
        return None

    def cancel_probationary(self) -> int:
        count = 0
        for i in range(self.head, len(self.entries)):
            e = self.entries[i]
            if e[_E_VALID] and not e[_E_CONFIRMED]:
                e[_E_VALID] = False
                count += 1
        self.cancellations += count
        self._reclaim_invalid_head()
        return count


class _Lockstep:
    """One lockstep run: n cells, one schedule, one latency table.

    Compact row ``k`` of every 2-D register array belongs to cell
    ``rows[k]``.  Memory reads resolve ``written_mem`` (store overlay) →
    ``mem_init_cols`` (addresses where the initial images differ) →
    ``mem_shared`` (the agreeing image); scalar per-row state exists only
    transiently, when a row spills to a resumed :class:`FastProcessor`
    or finishes (``_materialize_row`` writes the row's column values into
    the cell's own, never-mutated-meanwhile ``Memory``).
    """

    def __init__(
        self,
        scheduled: ScheduledProgram,
        machine: MachineDescription,
        cells: List[BatchCell],
    ) -> None:
        mode = scheduled.policy_name
        if mode.startswith("boosting"):
            raise ValueError("lockstep does not model boosting shadow banks")
        self.scheduled = scheduled
        self.machine = machine
        self.cells = cells
        self.decoded = decode_scheduled(scheduled, machine)
        n = len(cells)
        self.n = n
        if mode not in TAGGED_MODES + SILENT_MODES:
            raise ValueError(f"unknown scheduling model {mode!r}")
        self.tagged_mode = mode in TAGGED_MODES
        self.colwell_mode = mode == "colwell"
        self.max_cycles = cells[0].max_cycles

        base = cells[0].memory
        for cell in cells[1:]:
            if (
                cell.memory.segments != base.segments
                or cell.memory._faulting != base._faulting
            ):
                raise ValueError("lockstep cells must share segments and fault plan")
        #: Mapping/fault oracle only — shared across the batch, never mutated.
        self.check_memory = base
        #: Copies: a spilled row's resumed engine mutates its cell's dicts,
        #: which must not leak into the other rows' shared image.
        self.mem_shared: Dict[int, Value] = dict(base._data)
        self.tag_shared: Dict[int, bool] = dict(base._tag_bits)
        self.mem_init_cols: Dict[int, object] = {}
        self.tag_init_cols: Dict[int, object] = {}
        if n > 1:
            self._build_init_columns()

        # Compacted (n_active, n_regs) register files.
        self.di = _np.zeros((n, _REG_COUNT), dtype=_np.int64)
        self.df = _np.zeros((n, _REG_COUNT), dtype=_np.float64)
        self.isf = _np.zeros((n, _REG_COUNT), dtype=bool)
        self.isf[:, _FP_BASE:] = True  # FP file defaults to 0.0
        self.tg = _np.zeros((n, _REG_COUNT), dtype=_np.uint8)
        self.wr = _np.zeros((n, _REG_COUNT), dtype=_np.uint8)
        self.ready: List[int] = [0] * _REG_COUNT  # shared: same clock, same lat

        self.rows = _np.arange(n, dtype=_np.intp)  # compact -> original
        self.rows_list: List[int] = list(range(n))
        self.full = True  # rows is still the identity map
        #: False = provably no tag bit set anywhere: tag scans are free.
        self.any_tags = False

        #: Store overlay: address -> value column (original-row indexed).
        self.written_mem: Dict[int, object] = {}
        self.written_tags: Dict[int, object] = {}
        self.buffer = _ColBuffer(machine.store_buffer_size, self)
        #: Pending speculative traps — shared: per-row-divergent traps spill.
        self.ptraps: Dict[Value, Trap] = {}

        # Pending control flow, compact-row aligned.
        self.pk = _np.zeros(n, dtype=_np.uint8)  # 0 none / 1 halt / 2 branch
        self.pb = _np.full(n, -1, dtype=_np.int64)
        self.pcnd = _np.zeros(n, dtype=bool)
        #: Branch-target label per decoded block index (resume bookkeeping).
        self.label_of_bidx: Dict[int, Optional[str]] = {}
        self.results: List[object] = [None] * n

        # Shared scalars (identical across lockstep rows by construction).
        self.clock = 0
        self.dyn = 0
        self.interlock_stalls = 0
        self.mispredictions = 0
        self.io_events: List[int] = []
        self.block_idx = 0
        self.word_idx = 0

    def _build_init_columns(self) -> None:
        """Addresses where the cells' initial images disagree (in value
        *or* type — int 1 and float 1.0 behave differently downstream)
        become per-row columns; everywhere else the shared image serves."""
        cells = self.cells
        base_data = self.mem_shared
        base_tags = self.tag_shared
        diff = set()
        tdiff = set()
        for cell in cells[1:]:
            data = cell.memory._data
            for addr, val in data.items():
                bv = base_data.get(addr, 0)
                if type(bv) is not type(val) or bv != val:
                    diff.add(addr)
            for addr, bv in base_data.items():
                if addr not in data and (type(bv) is not int or bv != 0):
                    diff.add(addr)
            tags = cell.memory._tag_bits
            for addr, val in tags.items():
                if base_tags.get(addr, False) != val:
                    tdiff.add(addr)
            for addr, bv in base_tags.items():
                if bv and addr not in tags:
                    tdiff.add(addr)
        for addr in diff:
            self.mem_init_cols[addr] = _make_column(
                [cell.memory._data.get(addr, 0) for cell in cells]
            )
        for addr in tdiff:
            self.tag_init_cols[addr] = [
                cell.memory._tag_bits.get(addr, False) for cell in cells
            ]

    # -- column access helpers -----------------------------------------

    def _align(self, col):
        """Restrict a full-width column to the active rows (compact
        order); shared scalars pass through."""
        if isinstance(col, _np.ndarray):
            return col if self.full else col[self.rows]
        if isinstance(col, list):
            return col if self.full else [col[r] for r in self.rows_list]
        return col

    def _mem_active(self, address):
        """Memory value at ``address`` for the active rows (store overlay
        → init columns → shared image), compact-aligned."""
        col = self.written_mem.get(address)
        if col is None:
            col = self.mem_init_cols.get(address)
            if col is None:
                return self.mem_shared.get(address, 0)
        return self._align(col)

    def _tag_active(self, address):
        col = self.written_tags.get(address)
        if col is None:
            col = self.tag_init_cols.get(address)
            if col is None:
                return self.tag_shared.get(address, False)
        return self._align(col)

    def _mem_row(self, r: int, address):
        """Scalar memory read for *original* row ``r``."""
        col = self.written_mem.get(address)
        if col is not None:
            return _cget(col, r)
        col = self.mem_init_cols.get(address)
        if col is not None:
            return _cget(col, r)
        return self.mem_shared.get(address, 0)

    def _tag_row(self, r: int, address):
        col = self.written_tags.get(address)
        if col is not None:
            return _cget(col, r)
        col = self.tag_init_cols.get(address)
        if col is not None:
            return _cget(col, r)
        return self.tag_shared.get(address, False)

    def _poke_row(self, k: int, address, value, tag) -> None:
        """Per-row ``poke_tagged``: promote the address to list columns."""
        r = self.rows_list[k]
        mcol = self.written_mem.get(address)
        if not isinstance(mcol, list):
            mcol = [self._mem_row(rr, address) for rr in range(self.n)]
            self.written_mem[address] = mcol
        mcol[r] = value
        tcol = self.written_tags.get(address)
        if not isinstance(tcol, list):
            tcol = [self._tag_row(rr, address) for rr in range(self.n)]
            self.written_tags[address] = tcol
        tcol[r] = tag

    def _reg_column(self, ri: int):
        """Register ``ri``'s current values as a full-width column (store
        entries outlive compactions, so columns are original-row indexed)."""
        isfc = self.isf[:, ri]
        if not isfc.any():
            comp = self.di[:, ri].copy()
        elif isfc.all():
            comp = self.df[:, ri].copy()
        else:
            flags = isfc.tolist()
            fl = self.df[:, ri].tolist()
            il = self.di[:, ri].tolist()
            comp = [fl[k] if flags[k] else il[k] for k in range(len(flags))]
        if self.full:
            return comp
        if isinstance(comp, list):
            out = [0] * self.n
            for k, r in enumerate(self.rows_list):
                out[r] = comp[k]
            return out
        out = _np.zeros(self.n, dtype=comp.dtype)
        out[self.rows] = comp
        return out

    # -- scalar boundary helpers ---------------------------------------

    def _rowval(self, k: int, ri: int):
        if self.isf[k, ri]:
            return float(self.df[k, ri])
        return int(self.di[k, ri])

    def _write(self, k: int, ri: int, value, tag: int) -> None:
        """Scalar register write for compact row ``k``.  Raises
        :class:`_Spill` when the value cannot live in an int64 row (the
        spilled cell re-executes the record on the scalar engine)."""
        if isinstance(value, float):
            self.df[k, ri] = value
            self.isf[k, ri] = True
        else:
            if not _I64_MIN <= value <= _I64_MAX:
                raise _Spill()
            self.di[k, ri] = value
            self.isf[k, ri] = False
        self.tg[k, ri] = tag
        self.wr[k, ri] = 1
        if tag:
            self.any_tags = True

    def _write_active(self, dest_ri: int, colv, to_float: bool):
        """Write a value column (compact-aligned or shared scalar) into
        ``dest_ri`` for every active row, with the engine's int→float
        promotion on FP loads.  Returns compact rows that must spill."""
        di, df, isf, tg, wr = self.di, self.df, self.isf, self.tg, self.wr
        if isinstance(colv, _np.ndarray):
            if colv.dtype == _np.float64:
                df[:, dest_ri] = colv
                isf[:, dest_ri] = True
            elif to_float:
                df[:, dest_ri] = colv.astype(_np.float64)
                isf[:, dest_ri] = True
            else:
                di[:, dest_ri] = colv
                isf[:, dest_ri] = False
            tg[:, dest_ri] = 0
            wr[:, dest_ri] = 1
            return None
        if isinstance(colv, list):
            spill = []
            for k, value in enumerate(colv):
                if to_float and isinstance(value, int):
                    value = float(value)
                try:
                    self._write(k, dest_ri, value, 0)
                except _Spill:
                    spill.append(k)
            return spill or None
        value = colv
        if to_float and isinstance(value, int):
            value = float(value)
        if isinstance(value, float):
            df[:, dest_ri] = value
            isf[:, dest_ri] = True
        else:
            if not _I64_MIN <= value <= _I64_MAX:
                return list(range(len(self.rows_list)))
            di[:, dest_ri] = value
            isf[:, dest_ri] = False
        tg[:, dest_ri] = 0
        wr[:, dest_ri] = 1
        return None

    def _row_data(self, k: int) -> List[Value]:
        ints = self.di[k].tolist()
        floats = self.df[k].tolist()
        flags = self.isf[k].tolist()
        return [floats[i] if flags[i] else ints[i] for i in range(_REG_COUNT)]

    # -- tag / NaN scans -----------------------------------------------

    def _tag_mask(self, chk):
        """Bool mask of rows with a tagged check-source; None when clean."""
        if not self.any_tags:
            return None
        m = self.tg[:, list(chk)].any(axis=1)
        return m if m.any() else None

    def _tag_scan(self, k: int, chk):
        for ri in chk:
            if self.tg[k, ri]:
                return self._rowval(k, ri)
        return None

    def _nan_mask(self, chk):
        """Colwell NaN-poison scan, vectorized over the active rows."""
        m = _np.zeros(len(self.rows_list), dtype=bool)
        for ri in chk:
            m |= _np.where(
                self.isf[:, ri],
                _np.isnan(self.df[:, ri]),
                self.di[:, ri] == INT_NAN,
            )
        return m

    # -- leaving the batch ---------------------------------------------

    def _materialize_row(self, k: int):
        """Reconstruct scalar (memory, buffer) for one row.  The cell's
        own ``Memory`` — untouched since init — absorbs the store overlay
        in place, preserving exact key-presence semantics; the shared
        buffer's entries are copied with the row's value scalars."""
        r = self.rows_list[k]
        memory = self.cells[r].memory
        data = memory._data
        for address, col in self.written_mem.items():
            data[address] = _cget(col, r)
        if self.written_tags:
            tag_bits = memory._tag_bits
            for address, col in self.written_tags.items():
                if _cget(col, r):
                    tag_bits[address] = True
                else:
                    tag_bits.pop(address, None)
        src = self.buffer
        buf = _FastStoreBuffer(self.machine.store_buffer_size, memory)
        buf.head = src.head
        buf.cancellations = src.cancellations
        buf.releases = src.releases
        buf.entries = [
            [e[0], _cget(e[1], r), e[2], e[3], e[4], e[5], e[6], e[7]]
            for e in src.entries
        ]
        return memory, buf

    def _make_proc(self, k: int, slot: int, cancel: bool = False) -> FastProcessor:
        """Build the resumable FastProcessor for a spilled row."""
        r = self.rows_list[k]
        cell = self.cells[r]
        memory, buf = self._materialize_row(k)
        if cancel:
            buf.cancel_probationary()
        proc = FastProcessor.__new__(FastProcessor)
        proc.scheduled = self.scheduled
        proc.machine = cell.machine
        # Lockstep only ever runs timing-ideal machines (non-ideal cells
        # route to per-cell execution before rows form).
        proc.timing = None
        proc.tagged_mode = self.tagged_mode
        proc.colwell_mode = self.colwell_mode
        proc.on_exception = cell.on_exception
        proc.memory = memory
        proc.max_cycles = cell.max_cycles
        proc.max_recoveries = cell.max_recoveries
        proc.decoded = self.decoded
        proc.data = self._row_data(k)
        proc.tags = bytearray(self.tg[k].tobytes())
        proc.written = bytearray(self.wr[k].tobytes())
        proc.ready = list(self.ready)
        proc.buffer = buf
        proc._pending_traps = dict(self.ptraps)
        proc._clock = self.clock
        proc._exceptions = []
        proc._io_events = list(self.io_events)
        proc._dyn = 0
        proc._interlock_stalls = 0
        proc._buffer_stalls = 0
        proc._recoveries = 0
        proc._mispredictions = 0
        proc._fork_hook = None
        pkv = int(self.pk[k])
        pbv = int(self.pb[k])
        if pkv == 1:
            label = "__halt__"
        elif pkv == 2:
            label = self.label_of_bidx.get(pbv)
        else:
            label = None
        # Lockstep rows never stall (stalls spill), so the shared
        # buffer-stall and watchdog counters are identically zero.
        proc._resume = (
            self.block_idx,
            self.word_idx,
            slot,
            label,
            pbv,
            bool(self.pcnd[k]),
            self.dyn,
            self.interlock_stalls,
            0,
            self.mispredictions,
            0,
        )
        return proc

    def _spill(self, k: int, slot: int, cancel: bool = False) -> None:
        """Resume compact row k on the scalar engine from the current
        position (``cancel``: apply the branch-taken buffer cancel the
        row earned before resuming at the target)."""
        _count("lockstep_spills")
        proc = self._make_proc(k, slot, cancel=cancel)
        try:
            self.results[self.rows_list[k]] = proc.run()
        except SimulationError as exc:
            self.results[self.rows_list[k]] = exc

    def _finish(self, k: int) -> None:
        """Compact row k halted in lockstep: drain and assemble its result."""
        memory, buffer = self._materialize_row(k)
        r = self.rows_list[k]
        try:
            buffer.drain()
        except SimulationError as exc:
            self.results[r] = exc
            return
        data = self._row_data(k)
        written = self.wr[k].tolist()
        registers = {
            _REG_OBJECTS[i]: data[i] for i in range(_REG_COUNT) if written[i]
        }
        self.results[r] = ProcessorResult(
            registers=registers,
            memory=memory,
            exceptions=[],
            cycles=self.clock,
            dynamic_instructions=self.dyn,
            halted=True,
            aborted=False,
            io_events=list(self.io_events),
            stall_cycles=self.interlock_stalls,
            interlock_stalls=self.interlock_stalls,
            store_buffer_stalls=0,
            recoveries=0,
            mispredictions=self.mispredictions,
            cancelled_stores=buffer.cancellations,
        )

    def _compact(self, keep) -> None:
        """Physically remove retired/spilled rows from every compact array."""
        if keep.all():
            return
        self.di = self.di[keep]
        self.df = self.df[keep]
        self.isf = self.isf[keep]
        self.tg = self.tg[keep]
        self.wr = self.wr[keep]
        self.pk = self.pk[keep]
        self.pb = self.pb[keep]
        self.pcnd = self.pcnd[keep]
        self.rows = self.rows[keep]
        self.rows_list = self.rows.tolist()
        self.full = False

    def _error_all(self, message: str) -> None:
        for r in self.rows_list:
            self.results[r] = SimulationError(message)
        self.rows = self.rows[:0]
        self.rows_list = []

    # -- scalar per-row record fallbacks -------------------------------

    def _alu_scalar(self, rec, excl) -> List[int]:
        (_, instr, spec, chk, a_ri, a_imm, b_ri, b_imm,
         dest_ri, lat, uid, fn) = rec
        sp: List[int] = []
        for k in range(len(self.rows_list)):
            if excl is not None and excl[k]:
                continue
            result = fn(
                self._rowval(k, a_ri) if a_ri >= 0 else a_imm,
                self._rowval(k, b_ri) if b_ri >= 0 else b_imm,
            )
            if dest_ri > 0:
                try:
                    self._write(k, dest_ri, result, 0)
                except _Spill:
                    sp.append(k)
        return sp

    def _load_scalar(self, rec, excl) -> List[int]:
        """Per-row loads: non-uniform or unusual addresses.  A per-row
        pending trap cannot live in the shared ``ptraps`` dict, so a
        speculative sentinel load that traps here spills the row."""
        (_, instr, op, spec, chk, base_ri, off, dest_ri,
         is_fload, lat, uid) = rec
        sp: List[int] = []
        for k in range(len(self.rows_list)):
            if excl is not None and excl[k]:
                continue
            r = self.rows_list[k]
            address = int(self._rowval(k, base_ri)) + off
            trap = self.check_memory.check(address)
            if trap is None:
                col = self.buffer.search(address)
                value = _cget(col, r) if col is not None else self._mem_row(r, address)
                if is_fload and isinstance(value, int):
                    value = float(value)
                if dest_ri > 0:
                    try:
                        self._write(k, dest_ri, value, 0)
                    except _Spill:
                        sp.append(k)
            elif spec:
                if self.tagged_mode:
                    sp.append(k)  # row-private pending trap: leave the batch
                else:
                    if self.colwell_mode:
                        poison = GARBAGE_FP if is_fload else INT_NAN
                    else:
                        poison = GARBAGE_FP if is_fload else GARBAGE_INT
                    if dest_ri > 0:
                        self._write(k, dest_ri, poison, 0)
            else:
                sp.append(k)  # signal
        return sp

    def _compute_scalar(self, rec, excl) -> List[int]:
        (_, instr, op, spec, chk, operands, dest_ri, can_trap,
         poison_val, lat, uid) = rec
        sp: List[int] = []
        for k in range(len(self.rows_list)):
            if excl is not None and excl[k]:
                continue
            vals = [
                self._rowval(k, ri) if ri >= 0 else imm for ri, imm in operands
            ]
            result, trap = evaluate(op, vals)
            if trap is None:
                if dest_ri > 0:
                    try:
                        self._write(k, dest_ri, result, 0)
                    except _Spill:
                        sp.append(k)
            elif spec:
                if self.tagged_mode:
                    sp.append(k)  # row-private pending trap
                else:
                    poison = poison_val if self.colwell_mode else result
                    if dest_ri > 0:
                        try:
                            self._write(k, dest_ri, poison, 0)
                        except _Spill:
                            sp.append(k)
            else:
                sp.append(k)  # signal
        return sp

    def _fp_col(self, ri: int, imm):
        """Float operand column for vector FP compute, or None when the
        register file holds mixed int/float rows (scalar path)."""
        if ri < 0:
            return float(imm)
        isfc = self.isf[:, ri]
        if isfc.all():
            return self.df[:, ri]
        if not isfc.any():
            return self.di[:, ri].astype(_np.float64)
        return None

    # -- the word loop -------------------------------------------------

    def run(self) -> List[object]:  # noqa: C901 — mirrors the engine loop
        decoded = self.decoded
        blocks = decoded.blocks
        if not blocks:
            self._error_all("empty scheduled program")
            return self.results
        tagged_mode = self.tagged_mode
        colwell_mode = self.colwell_mode
        max_cycles = self.max_cycles
        ready = self.ready
        buffer = self.buffer
        io_events = self.io_events

        def spill_list(ks, slot) -> None:
            if not ks:
                return
            for k in ks:
                self._spill(k, slot)
            keep = _np.ones(len(self.rows_list), dtype=bool)
            keep[list(ks)] = False
            self._compact(keep)

        def spill_mask(mask, slot):
            """Spill all rows in ``mask``; returns the keep mask for
            slicing any record-local arrays, or None if nothing spilled."""
            ks = _np.nonzero(mask)[0].tolist()
            if not ks:
                return None
            for k in ks:
                self._spill(k, slot)
            keep = ~mask
            self._compact(keep)
            return keep

        def spill_all(slot) -> None:
            spill_list(list(range(len(self.rows_list))), slot)

        def tag_phase(spec, chk, dest_ri, slot):
            """Handle tagged check-sources before a vector record: spill
            non-speculative rows (signal), propagate the tag for
            speculative ones (Table 1 row 6).  Returns the mask of rows
            that already completed the record via propagation."""
            m = self._tag_mask(chk)
            if m is None:
                return None
            to_spill = []
            for k in _np.nonzero(m)[0].tolist():
                if not spec:
                    to_spill.append(k)
                elif dest_ri > 0:
                    try:
                        self._write(k, dest_ri, self._tag_scan(k, chk), 1)
                    except _Spill:
                        to_spill.append(k)
            spill_list(to_spill, slot)
            if not self.rows_list:
                return None
            return self._tag_mask(chk)

        while self.rows_list:
            block_idx = self.block_idx
            block = blocks[block_idx]
            words = block.words
            if self.word_idx >= len(words):
                if not block.falls_through:
                    self._error_all(
                        f"control fell off non-fall-through block {block.label}"
                    )
                    return self.results
                if block_idx + 1 >= len(blocks):
                    self._error_all("control fell off the end of the program")
                    return self.results
                self.block_idx += 1
                self.word_idx = 0
                continue

            word = words[self.word_idx]
            records = word.records
            n_slots = len(records)

            # CRAY-1 interlock over the word's sources (always slot 0:
            # lockstep rows never re-enter a word mid-way — those spill).
            needed = self.clock
            for ri in word.interlock[0] if n_slots else ():
                t = ready[ri]
                if t > needed:
                    needed = t
            while self.clock < needed:
                self.interlock_stalls += 1
                buffer.release_cycle()
                self.clock += 1
                if self.clock > max_cycles:
                    self._error_all(f"cycle limit {max_cycles} exceeded")
                    return self.results

            self.pk[:] = 0
            self.pb[:] = -1
            self.pcnd[:] = False

            clock = self.clock
            for slot in range(n_slots):
                if not self.rows_list:
                    break
                rec = records[slot]
                kind = rec[0]

                if kind == K_ALU:
                    (_, instr, spec, chk, a_ri, a_imm, b_ri, b_imm,
                     dest_ri, lat, uid, fn) = rec
                    excl = None
                    if tagged_mode and chk:
                        excl = tag_phase(spec, chk, dest_ri, slot)
                    if self.rows_list:
                        if not (_imm_i64(a_imm) and _imm_i64(b_imm)):
                            spill_list(self._alu_scalar(rec, excl), slot)
                        else:
                            fmask = None
                            if a_ri >= 0:
                                fmask = self.isf[:, a_ri].copy()
                            if b_ri >= 0:
                                fb = self.isf[:, b_ri]
                                fmask = fb.copy() if fmask is None else fmask | fb
                            has_f = fmask is not None and fmask.any()
                            vec = None
                            if has_f or excl is not None:
                                vec = _np.ones(len(self.rows_list), dtype=bool)
                                if has_f:
                                    vec &= ~fmask
                                if excl is not None:
                                    vec &= ~excl
                            if dest_ri > 0:
                                na = len(self.rows_list)
                                a = (
                                    self.di[:, a_ri]
                                    if a_ri >= 0
                                    else _np.full(na, a_imm, _np.int64)
                                )
                                b = (
                                    self.di[:, b_ri]
                                    if b_ri >= 0
                                    else _np.full(na, b_imm, _np.int64)
                                )
                                res = _VEC_ALU[instr.op](a, b)
                                if vec is None:
                                    self.di[:, dest_ri] = res
                                    self.isf[:, dest_ri] = False
                                    self.tg[:, dest_ri] = 0
                                    self.wr[:, dest_ri] = 1
                                else:
                                    self.di[vec, dest_ri] = res[vec]
                                    self.isf[vec, dest_ri] = False
                                    self.tg[vec, dest_ri] = 0
                                    self.wr[vec, dest_ri] = 1
                            if has_f:
                                scal = fmask if excl is None else (fmask & ~excl)
                                sp = []
                                for k in _np.nonzero(scal)[0].tolist():
                                    result = fn(
                                        self._rowval(k, a_ri) if a_ri >= 0 else a_imm,
                                        self._rowval(k, b_ri) if b_ri >= 0 else b_imm,
                                    )
                                    if dest_ri > 0:
                                        try:
                                            self._write(k, dest_ri, result, 0)
                                        except _Spill:
                                            sp.append(k)
                                spill_list(sp, slot)
                    if dest_ri >= 0 and self.rows_list:
                        ready[dest_ri] = clock + lat

                elif kind == K_COND:
                    (_, instr, chk, a_ri, a_imm, b_ri, b_imm, cmp,
                     target, target_bidx) = rec
                    if tagged_mode and chk:
                        m = self._tag_mask(chk)
                        if m is not None:
                            spill_mask(m, slot)
                    if self.rows_list:
                        na = len(self.rows_list)
                        use_vector = (
                            _imm_i64(a_imm)
                            and _imm_i64(b_imm)
                            and not (a_ri >= 0 and self.isf[:, a_ri].any())
                            and not (b_ri >= 0 and self.isf[:, b_ri].any())
                        )
                        if use_vector:
                            a = (
                                self.di[:, a_ri]
                                if a_ri >= 0
                                else _np.full(na, a_imm, _np.int64)
                            )
                            b = (
                                self.di[:, b_ri]
                                if b_ri >= 0
                                else _np.full(na, b_imm, _np.int64)
                            )
                            outcome = cmp(a, b)
                        else:
                            outcome = _np.fromiter(
                                (
                                    bool(
                                        cmp(
                                            self._rowval(k, a_ri)
                                            if a_ri >= 0
                                            else a_imm,
                                            self._rowval(k, b_ri)
                                            if b_ri >= 0
                                            else b_imm,
                                        )
                                    )
                                    for k in range(na)
                                ),
                                dtype=bool,
                                count=na,
                            )
                        if outcome.any():
                            if target_bidx < 0:
                                bad = outcome
                                good = None
                            else:
                                # two-taken-branches error: re-raised
                                # naturally by the resumed engine.
                                bad = outcome & (self.pk != 0)
                                good = outcome & ~bad
                            if good is not None and good.any():
                                self.pk[good] = 2
                                self.pb[good] = target_bidx
                                self.pcnd[good] = True
                                self.label_of_bidx[target_bidx] = target
                            if bad.any():
                                spill_mask(bad, slot)

                elif kind == K_CHECK:
                    _, instr, src_ri, dest_ri, lat = rec
                    if tagged_mode and self.any_tags:
                        m = self.tg[:, src_ri] != 0
                        if m.any():
                            spill_mask(m, slot)
                    if dest_ri >= 0 and self.rows_list:
                        ready[dest_ri] = clock + lat
                        if dest_ri:
                            self.di[:, dest_ri] = self.di[:, src_ri]
                            self.df[:, dest_ri] = self.df[:, src_ri]
                            self.isf[:, dest_ri] = self.isf[:, src_ri]
                            self.tg[:, dest_ri] = 0
                            self.wr[:, dest_ri] = 1

                elif kind == K_CLRTAG:
                    dest_ri = rec[2]
                    if dest_ri >= 0:
                        self.tg[:, dest_ri] = 0

                elif kind == K_JUMP:
                    target, target_bidx = rec[2], rec[3]
                    if target_bidx < 0:
                        spill_all(slot)
                    else:
                        bad = self.pk != 0
                        if bad.any():
                            spill_mask(bad, slot)
                        if self.rows_list:
                            self.pk[:] = 2
                            self.pb[:] = target_bidx
                            self.pcnd[:] = False
                            self.label_of_bidx[target_bidx] = target

                elif kind == K_HALT:
                    bad = self.pk != 0
                    if bad.any():
                        spill_mask(bad, slot)
                    if self.rows_list:
                        self.pk[:] = 1

                elif kind == K_IO:
                    io_events.append(rec[2])

                elif kind == K_NOP:
                    pass

                elif kind == K_TLOAD:
                    _, instr, base_ri, off, dest_ri, lat = rec
                    sp = None
                    vec_done = False
                    if not self.isf[:, base_ri].any():
                        bases = self.di[:, base_ri]
                        if not (
                            (bases > _ADDR_LIM) | (bases < -_ADDR_LIM)
                        ).any():
                            bcol = bases + off
                            address = int(bcol[0])
                            if bool((bcol == address).all()):
                                coltag = self._tag_active(address)
                                if not isinstance(coltag, (list, _np.ndarray)):
                                    if dest_ri > 0:
                                        sp = self._write_active(
                                            dest_ri,
                                            self._mem_active(address),
                                            False,
                                        )
                                        if coltag and tagged_mode:
                                            self.tg[:, dest_ri] = 1
                                            self.any_tags = True
                                    vec_done = True
                    if not vec_done:
                        sp = []
                        for k in range(len(self.rows_list)):
                            r = self.rows_list[k]
                            address = int(self._rowval(k, base_ri)) + off
                            value = self._mem_row(r, address)
                            tag = self._tag_row(r, address)
                            if dest_ri > 0:
                                try:
                                    self._write(
                                        k,
                                        dest_ri,
                                        value,
                                        1 if (tag and tagged_mode) else 0,
                                    )
                                except _Spill:
                                    sp.append(k)
                    spill_list(sp or [], slot)
                    if dest_ri >= 0 and self.rows_list:
                        ready[dest_ri] = clock + lat

                elif kind == K_TSTORE:
                    _, instr, base_ri, off, val_ri, val_imm = rec
                    done = False
                    if not self.isf[:, base_ri].any():
                        bases = self.di[:, base_ri]
                        if not (
                            (bases > _ADDR_LIM) | (bases < -_ADDR_LIM)
                        ).any():
                            bcol = bases + off
                            address = int(bcol[0])
                            if bool((bcol == address).all()):
                                if val_ri >= 0:
                                    value_col = self._reg_column(val_ri)
                                    tcomp = self.tg[:, val_ri]
                                    if tcomp.any():
                                        tag_col: object = [False] * self.n
                                        tl = tcomp.tolist()
                                        for k2, r2 in enumerate(self.rows_list):
                                            tag_col[r2] = bool(tl[k2])
                                    else:
                                        tag_col = False
                                else:
                                    value_col = val_imm
                                    tag_col = False
                                self.written_mem[address] = value_col
                                self.written_tags[address] = tag_col
                                done = True
                    if not done:
                        for k in range(len(self.rows_list)):
                            address = int(self._rowval(k, base_ri)) + off
                            if val_ri >= 0:
                                self._poke_row(
                                    k,
                                    address,
                                    self._rowval(k, val_ri),
                                    bool(self.tg[k, val_ri]),
                                )
                            else:
                                self._poke_row(k, address, val_imm, False)

                elif kind == K_LOAD:
                    (_, instr, op, spec, chk, base_ri, off, dest_ri,
                     is_fload, lat, uid) = rec
                    excl = None
                    if tagged_mode and chk:
                        excl = tag_phase(spec, chk, dest_ri, slot)
                    if colwell_mode and not spec and chk and self.rows_list:
                        nm = self._nan_mask(chk)
                        if nm.any():
                            spill_mask(nm, slot)
                    if self.rows_list:
                        bcol = None
                        if excl is None and not self.isf[:, base_ri].any():
                            bases = self.di[:, base_ri]
                            if not (
                                (bases > _ADDR_LIM) | (bases < -_ADDR_LIM)
                            ).any():
                                bcol = bases + off
                        if bcol is None or not bool((bcol == bcol[0]).all()):
                            spill_list(self._load_scalar(rec, excl), slot)
                        else:
                            address = int(bcol[0])
                            trap = self.check_memory.check(address)
                            if trap is None:
                                value_col = buffer.search(address)
                                value_col = (
                                    self._align(value_col)
                                    if value_col is not None
                                    else self._mem_active(address)
                                )
                                if dest_ri > 0:
                                    sp = self._write_active(
                                        dest_ri, value_col, is_fload
                                    )
                                    spill_list(sp or [], slot)
                            elif spec:
                                if tagged_mode:
                                    # Batch-uniform pending trap: shareable.
                                    self.ptraps[uid] = trap
                                    if dest_ri > 0:
                                        self.di[:, dest_ri] = uid
                                        self.isf[:, dest_ri] = False
                                        self.tg[:, dest_ri] = 1
                                        self.wr[:, dest_ri] = 1
                                        self.any_tags = True
                                else:
                                    if colwell_mode:
                                        poison = GARBAGE_FP if is_fload else INT_NAN
                                    else:
                                        poison = (
                                            GARBAGE_FP if is_fload else GARBAGE_INT
                                        )
                                    if dest_ri > 0:
                                        if isinstance(poison, float):
                                            self.df[:, dest_ri] = poison
                                            self.isf[:, dest_ri] = True
                                        else:
                                            self.di[:, dest_ri] = poison
                                            self.isf[:, dest_ri] = False
                                        self.tg[:, dest_ri] = 0
                                        self.wr[:, dest_ri] = 1
                            else:
                                spill_all(slot)  # signal
                    if dest_ri >= 0 and self.rows_list:
                        ready[dest_ri] = clock + lat

                elif kind == K_COMPUTE:
                    (_, instr, op, spec, chk, operands, dest_ri, can_trap,
                     poison_val, lat, uid) = rec
                    excl = None
                    if tagged_mode and chk:
                        excl = tag_phase(spec, chk, dest_ri, slot)
                    if (
                        colwell_mode
                        and not spec
                        and can_trap
                        and chk
                        and self.rows_list
                    ):
                        nm = self._nan_mask(chk)
                        if nm.any():
                            spill_mask(nm, slot)
                    if self.rows_list:
                        a_col = b_col = None
                        res = tmask = None
                        res_f = True
                        fp_bin = op in _FP_BIN_OPS
                        fp_cmp = op in _FP_CMP_OPS
                        ok = False
                        if fp_bin or fp_cmp:
                            a_col = self._fp_col(*operands[0])
                            b_col = self._fp_col(*operands[1])
                            ok = (
                                a_col is not None
                                and b_col is not None
                                and (
                                    isinstance(a_col, _np.ndarray)
                                    or isinstance(b_col, _np.ndarray)
                                )
                            )
                        elif op is Opcode.FMOV or op is Opcode.FCVT_FI:
                            a_col = self._fp_col(*operands[0])
                            ok = isinstance(a_col, _np.ndarray)
                        elif op is Opcode.FCVT_IF:
                            ri0 = operands[0][0]
                            if ri0 >= 0 and not self.isf[:, ri0].any():
                                a_col = self.di[:, ri0]
                                ok = True
                        if not ok:
                            spill_list(self._compute_scalar(rec, excl), slot)
                        else:
                            # Exact mirrors of evaluate()/_fp_binary: NaN
                            # operands, FDIV by zero, fresh infinities and
                            # NaN results trap; everything else is IEEE.
                            with _np.errstate(all="ignore"):
                                if fp_bin:
                                    if op is Opcode.FADD:
                                        res = a_col + b_col
                                    elif op is Opcode.FSUB:
                                        res = a_col - b_col
                                    elif op is Opcode.FMUL:
                                        res = a_col * b_col
                                    else:
                                        res = a_col / b_col
                                    tmask = _np.isnan(a_col) | _np.isnan(b_col)
                                    if op is Opcode.FDIV:
                                        tmask = tmask | (b_col == 0.0)
                                    tmask = tmask | (
                                        _np.isinf(res)
                                        & ~(_np.isinf(a_col) | _np.isinf(b_col))
                                    )
                                    tmask = tmask | _np.isnan(res)
                                elif fp_cmp:
                                    tmask = _np.isnan(a_col) | _np.isnan(b_col)
                                    if op is Opcode.FCLT:
                                        res = a_col < b_col
                                    elif op is Opcode.FCLE:
                                        res = a_col <= b_col
                                    else:
                                        res = a_col == b_col
                                    res = res.astype(_np.int64)
                                    res_f = False
                                elif op is Opcode.FMOV:
                                    res = a_col.copy()
                                elif op is Opcode.FCVT_IF:
                                    res = a_col.astype(_np.float64)
                                else:  # FCVT_FI: trunc toward zero
                                    tmask = _np.isnan(a_col) | (
                                        _np.abs(a_col) >= _S63F
                                    )
                                    res = _np.where(tmask, 0.0, a_col).astype(
                                        _np.int64
                                    )
                                    res_f = False
                            if tmask is not None and tmask.any():
                                tsp = tmask if excl is None else (tmask & ~excl)
                                if tsp.any():
                                    if tagged_mode or not spec:
                                        # Pending trap or signal: spill.
                                        keep = spill_mask(tsp, slot)
                                        if keep is not None:
                                            res = res[keep]
                                            if excl is not None:
                                                excl = excl[keep]
                                    else:
                                        if colwell_mode:
                                            pv = poison_val
                                        else:
                                            pv = GARBAGE_FP if res_f else GARBAGE_INT
                                        res[tsp] = pv
                            if self.rows_list and dest_ri > 0:
                                if excl is None:
                                    if res_f:
                                        self.df[:, dest_ri] = res
                                        self.isf[:, dest_ri] = True
                                    else:
                                        self.di[:, dest_ri] = res
                                        self.isf[:, dest_ri] = False
                                    self.tg[:, dest_ri] = 0
                                    self.wr[:, dest_ri] = 1
                                else:
                                    vec = ~excl
                                    if res_f:
                                        self.df[vec, dest_ri] = res[vec]
                                        self.isf[vec, dest_ri] = True
                                    else:
                                        self.di[vec, dest_ri] = res[vec]
                                        self.isf[vec, dest_ri] = False
                                    self.tg[vec, dest_ri] = 0
                                    self.wr[vec, dest_ri] = 1
                    if dest_ri >= 0 and self.rows_list:
                        ready[dest_ri] = clock + lat

                elif kind == K_STORE:
                    (_, instr, spec, chk, base_ri, off, val_ri, val_imm,
                     uid) = rec
                    if not tagged_mode and spec:
                        self._error_all(
                            f"speculative store {uid} under a silent-mode schedule"
                        )
                        break
                    if tagged_mode and chk:
                        # Divergent buffer actions are impossible: tagged
                        # rows spill and re-run the store on their own
                        # engine (exc-tag entries included).
                        m = self._tag_mask(chk)
                        if m is not None:
                            spill_mask(m, slot)
                    if colwell_mode and chk and self.rows_list:
                        nm = self._nan_mask(chk)
                        if nm.any():
                            spill_mask(nm, slot)
                    if self.rows_list:
                        bad = None
                        if self.isf[:, base_ri].any():
                            bad = self.isf[:, base_ri]
                        else:
                            bases = self.di[:, base_ri]
                            big = (bases > _ADDR_LIM) | (bases < -_ADDR_LIM)
                            if big.any():
                                bad = big
                        if bad is not None and bad.any():
                            spill_mask(bad, slot)
                    if self.rows_list:
                        addrs = self.di[:, base_ri] + off
                        address = int(addrs[0])
                        if len(self.rows_list) > 1 and not bool(
                            (addrs == address).all()
                        ):
                            # Shared bookkeeping needs one address: the
                            # largest group stays (ties: lowest address),
                            # the rest spill before any buffer mutation.
                            uniq, counts = _np.unique(addrs, return_counts=True)
                            address = int(uniq[counts == counts.max()].min())
                            _count(
                                "lockstep_store_splits",
                                int((addrs != address).sum()),
                            )
                            spill_mask(addrs != address, slot)
                    if self.rows_list:
                        trap = self.check_memory.check(address)
                        value_col = (
                            self._reg_column(val_ri) if val_ri >= 0 else val_imm
                        )
                        if not tagged_mode:
                            if trap is not None or not buffer.can_insert():
                                spill_all(slot)  # signal / store-buffer stall
                            else:
                                buffer.entries.append(
                                    [address, value_col, True, True, False,
                                     None, None, uid]
                                )
                        else:
                            will_insert = spec or trap is None
                            if will_insert and not buffer.can_insert():
                                spill_all(slot)  # store-buffer stall
                            elif not spec:
                                if trap is not None:
                                    spill_all(slot)  # signal
                                else:
                                    buffer.entries.append(
                                        [address, value_col, True, True, False,
                                         None, None, uid]
                                    )
                            elif trap is not None:
                                buffer.entries.append(
                                    [address, value_col, False, True, True,
                                     uid, trap, uid]
                                )
                                self.ptraps[uid] = trap
                            else:
                                buffer.entries.append(
                                    [address, value_col, False, True, False,
                                     None, None, uid]
                                )

                elif kind == K_CONFIRM:
                    _, instr, index, uid = rec
                    try:
                        entry = buffer.confirm(index, uid)
                    except SimulationError as exc:
                        self._error_all(str(exc))
                        break
                    if entry is not None:
                        # Excepting entry: every row spills; the entry was
                        # deliberately not invalidated, so each resumed
                        # engine re-runs the confirm and raises the signal
                        # under its own policy.
                        spill_all(slot)

                if not self.rows_list:
                    break
                self.dyn += 1

            if not self.rows_list:
                break

            # Word end: release a buffer slot (once — shared bookkeeping),
            # advance the clock.
            buffer.release_cycle()
            self.clock += 1
            if self.clock > max_cycles:
                self._error_all(f"cycle limit {max_cycles} exceeded")
                return self.results

            # Resolve control flow.  All rows took the same records, so a
            # halt is unanimous (a second taken branch spills at its slot);
            # conditional branches may split the batch.
            na = len(self.rows_list)
            if na > 1 and not bool(
                (self.pk == self.pk[0]).all()
                and (self.pb == self.pb[0]).all()
                and (self.pcnd == self.pcnd[0]).all()
            ):
                pkl = self.pk.tolist()
                pbl = self.pb.tolist()
                pcl = self.pcnd.tolist()
                groups: Dict[tuple, List[int]] = {}
                for k in range(na):
                    groups.setdefault((pkl[k], pbl[k], pcl[k]), []).append(k)
                # Majority stays in lockstep; ties break deterministically.
                stay_key = max(
                    groups,
                    key=lambda key: (len(groups[key]), -int(key[0]), -int(key[1])),
                )
                bi, wi = self.block_idx, self.word_idx
                saved_mis = self.mispredictions
                drop: List[int] = []
                for key, ks in groups.items():
                    if key == stay_key:
                        continue
                    kind_, bidx_, cond_ = key
                    _count("lockstep_divergences", len(ks))
                    for k in ks:
                        if kind_ == 1:
                            self._finish(k)
                            continue
                        self.pk[k] = 0
                        if kind_ == 2:
                            # Post-word spill: apply this row's branch
                            # bookkeeping, then resume at the target top.
                            self.mispredictions = saved_mis + (1 if cond_ else 0)
                            self.block_idx, self.word_idx = int(bidx_), 0
                            self._spill(k, 0, cancel=True)
                        else:
                            # Fall-through minority (kind 0): next word.
                            self.word_idx = wi + 1
                            self._spill(k, 0)
                        self.block_idx, self.word_idx = bi, wi
                        self.mispredictions = saved_mis
                    drop.extend(ks)
                keep = _np.ones(na, dtype=bool)
                keep[drop] = False
                self._compact(keep)
                kind_, bidx_, cond_ = stay_key
            else:
                kind_ = int(self.pk[0])
                bidx_ = int(self.pb[0])
                cond_ = bool(self.pcnd[0])
            if kind_ == 1:
                for k in range(len(self.rows_list)):
                    self._finish(k)
                break
            if kind_ == 2:
                buffer.cancel_probationary()
                if cond_:
                    self.mispredictions += 1
                self.block_idx = int(bidx_)
                self.word_idx = 0
            else:
                self.word_idx += 1

        return self.results


def run_lockstep(
    scheduled: ScheduledProgram,
    machine: MachineDescription,
    cells: List[BatchCell],
) -> List[object]:
    """Run cells sharing one schedule in columnar numpy lockstep.

    Returns results aligned to ``cells``: :class:`ProcessorResult` or the
    :class:`SimulationError` the single-cell engine would have raised.
    Cells must share ``scheduled``, the machine latency table and store
    buffer size, ``max_cycles``, the memory *mapping* (segments and fault
    plan — contents may differ arbitrarily), and have no initial register
    file.
    """
    if _np is None:
        raise RuntimeError("run_lockstep requires numpy")
    if not cells:
        return []
    for cell in cells:
        if cell.on_exception not in _POLICIES:
            raise ValueError(f"unknown exception policy {cell.on_exception!r}")
        if cell.init_regs or cell.init_tags:
            raise ValueError("lockstep cells cannot carry initial register files")
    _count("cells_lockstep", len(cells))
    _count("lockstep_runs")
    return _Lockstep(scheduled, machine, cells).run()


# ----------------------------------------------------------------------
# The batch front door.
# ----------------------------------------------------------------------


def run_batch(cells: List[BatchCell], batch: Optional[bool] = None) -> List[object]:
    """Execute independent cells, batched where profitable.

    Results are aligned to the input: each entry is the
    :class:`ProcessorResult` of the cell, or the :class:`SimulationError`
    the single-cell run would have raised (``KeyError`` and friends —
    internal errors — propagate, as they do from ``run_scheduled``).

    ``batch=False`` (or ``REPRO_BATCH_PROC=0``, or a missing numpy)
    degrades to per-cell execution with identical results.
    """
    cells = list(cells)
    if not cells:
        return []
    if batch is None:
        batch = batch_default()
    for cell in cells:
        if cell.on_exception not in _POLICIES:
            raise ValueError(f"unknown exception policy {cell.on_exception!r}")
    _count("cells_total", len(cells))
    results: List[object] = [None] * len(cells)
    usable = batch and _fast_default()

    groups: Dict[tuple, List[int]] = {}
    for idx, cell in enumerate(cells):
        if (
            not usable
            or cell.scheduled.policy_name.startswith("boosting")
            or cell.init_regs
            or cell.init_tags
        ):
            results[idx] = _run_single(cell)
            continue
        if not cell.machine.is_ideal_timing:
            # Fetch/predictor/cache state is per-cell and history-
            # dependent, so neither coalescing (fork would have to clone
            # it) nor lockstep (lanes would diverge on cache contents)
            # applies; the per-cell fast engine threads the full timing
            # model and stays bit-identical to the reference.
            _count("cells_machine_timing")
            results[idx] = _run_single(cell)
            continue
        key = (
            id(cell.scheduled),
            _latency_key(cell.machine),
            cell.machine.store_buffer_size,
            cell.max_cycles,
            cell.max_recoveries,
        )
        groups.setdefault(key, []).append(idx)

    for idxs in groups.values():
        # Partition the group by initial memory content: equal-content
        # cells coalesce into one run; distinct-content cells go lockstep.
        classes: Dict[tuple, List[int]] = {}
        for idx in idxs:
            classes.setdefault(_memory_key(cells[idx].memory), []).append(idx)
        # Lockstep additionally needs a shared mapping: same segments
        # (key[0]) and fault plan (key[2]); content (key[1]/key[3]) may
        # differ per lane.
        lanes: Dict[tuple, List[int]] = {}
        for mkey, members in classes.items():
            if len(members) > 1:
                for idx, res in zip(
                    members, _run_coalesced([cells[i] for i in members])
                ):
                    results[idx] = res
            else:
                lanes.setdefault((mkey[0], mkey[2]), []).append(members[0])
        for members in lanes.values():
            if len(members) >= 2 and _np is not None:
                first = cells[members[0]]
                for idx, res in zip(
                    members,
                    run_lockstep(
                        first.scheduled, first.machine, [cells[i] for i in members]
                    ),
                ):
                    results[idx] = res
            else:
                for idx in members:
                    results[idx] = _run_single(cells[idx])
    return results
