"""Register file with per-register exception tags (Section 3.2).

"A second extension is an exception tag added to each register in the
register file.  The exception tag is used to signal an exception that
occurred when a speculative instruction is executed."  The tag travels
with the data on spills and context switches via ``tstore``/``tload``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple, Union

from ..core.tags import TaggedValue
from ..isa.registers import Register

Value = Union[int, float]


class TaggedRegisterFile:
    """64 integer + 64 FP registers, each with a data field and a tag."""

    def __init__(self) -> None:
        self._data: Dict[Register, Value] = {}
        self._tags: Dict[Register, bool] = {}

    def read(self, reg: Register) -> TaggedValue:
        if reg.is_zero:
            return TaggedValue(0, False)
        default: Value = 0.0 if reg.is_fp else 0
        return TaggedValue(self._data.get(reg, default), self._tags.get(reg, False))

    def value(self, reg: Register) -> Value:
        return self.read(reg).data

    def tag(self, reg: Register) -> bool:
        return self.read(reg).tag

    def write(self, reg: Register, value: Value, tag: bool = False) -> None:
        if reg.is_zero:
            return  # hardwired zero
        self._data[reg] = value
        if tag:
            self._tags[reg] = True
        else:
            self._tags.pop(reg, None)

    def clear_tag(self, reg: Register) -> None:
        """The ``clrtag`` instruction: reset the tag, keep the data."""
        self._tags.pop(reg, None)

    def set_tag(self, reg: Register, pc: Value) -> None:
        """Force a tag (test setup for the Section 3.5 uninitialized case)."""
        if reg.is_zero:
            return
        self._data[reg] = pc
        self._tags[reg] = True

    def tagged_registers(self) -> Tuple[Register, ...]:
        return tuple(sorted((r for r, t in self._tags.items() if t), key=lambda r: (r.kind, r.index)))

    def values(self) -> Dict[Register, Value]:
        return dict(self._data)

    def load_values(self, values: Iterable[Tuple[Register, Value]]) -> None:
        for reg, value in values:
            self.write(reg, value)
