"""The PC History Queue (Section 3.2).

"The pc of I can be obtained from a PC History Queue which keeps a record
of the last m pc values to enable reporting exceptions with non-uniform
latency function units."  The cycle simulator pushes every issued
instruction's PC at issue time; when a long-latency speculative operation
completes with an exception, the destination's data field is filled from
this queue rather than from a (by then overwritten) fetch PC.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from .exceptions import SimulationError


class PCHistoryQueue:
    """Ring buffer of the last ``depth`` issued (cycle, pc) pairs."""

    def __init__(self, depth: int = 32) -> None:
        if depth < 1:
            raise ValueError("PC history depth must be >= 1")
        self.depth = depth
        self._entries: Deque[Tuple[int, int]] = deque(maxlen=depth)

    def push(self, cycle: int, pc: int) -> None:
        self._entries.append((cycle, pc))

    def lookup(self, pc: int) -> int:
        """Retrieve ``pc`` from the queue (raises if it aged out).

        A real machine sizes the queue to cover its longest latency; the
        simulator raises instead of silently mis-reporting so an undersized
        configuration is caught by tests.
        """
        for _cycle, recorded in reversed(self._entries):
            if recorded == pc:
                return recorded
        raise SimulationError(
            f"pc {pc} aged out of the {self.depth}-entry PC history queue"
        )

    def newest(self) -> Optional[Tuple[int, int]]:
        return self._entries[-1] if self._entries else None

    def __len__(self) -> int:
        return len(self._entries)
