"""IR verification between compilation passes.

The verifier checks the invariants every pass boundary must preserve:

* **CFG well-formedness** — unique labels, unique uids, branch targets
  that exist, control that never falls off the end of the program.
* **Operand/def-use consistency** — destination presence matching the
  opcode, operands of legal types, cached ``info`` in sync with the
  opcode, liveness artifacts computed over the current program.
* **Home-block and sentinel invariants** (paper Tables 1-2 and the
  Appendix) — every instruction's home block resolves to a current or
  merged-into-superblock label; ``CHECK``/``CONFIRM`` sentinels name the
  instructions they protect and, once scheduled, sit inside their home
  block; the speculative modifier appears only on speculable opcodes.
* **Dependence-graph validity** — acyclicity, arc kinds consistent with
  their endpoint instructions, non-negative latencies, mirror-consistent
  adjacency storage.

A violation raises :class:`IRVerificationError` carrying the pass
boundary (``after_pass``) and the offending block, which is what lets a
corrupted stage be localized instead of surfacing as a scheduler crash
three passes later.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Set

from ..deps.types import ArcKind, DepGraph
from ..isa.instruction import Instruction
from ..isa.opcodes import Opcode
from ..isa.program import Block, Program
from ..isa.registers import Register

if TYPE_CHECKING:
    from .context import PipelineContext


class IRVerificationError(Exception):
    """An IR invariant does not hold at a pass boundary."""

    def __init__(
        self,
        message: str,
        *,
        after_pass: Optional[str] = None,
        block: Optional[str] = None,
    ) -> None:
        self.reason = message
        self.after_pass = after_pass
        self.block = block
        super().__init__(message)

    def __str__(self) -> str:
        where = f"after pass {self.after_pass!r}" if self.after_pass else "at entry"
        if self.block is not None:
            where += f", block {self.block!r}"
        return f"IR verification failed {where}: {self.reason}"


class IRVerifier:
    """Checks the full pipeline context; stateless and reusable."""

    name = "verify"

    # ------------------------------------------------------------------
    # Entry point.
    # ------------------------------------------------------------------

    def verify(
        self,
        ctx: "PipelineContext",
        after: Optional[str] = None,
        scope: str = "full",
    ) -> None:
        """Verify every artifact currently present in ``ctx``.

        ``after`` names the pass boundary for error attribution.  A
        ``"backend"`` scope (pass boundaries that cannot restructure the
        program, declared via :attr:`Pass.verify_scope`) skips the
        program/liveness walk and checks the scheduled output and any
        newly cached graphs.
        """
        try:
            if scope == "full":
                program = ctx.work if ctx.work is not None else ctx.program
                merged = self._merged_labels(ctx)
                self.check_program(program, merged_labels=merged)
                if ctx.liveness is not None and ctx.work is not None:
                    self.check_liveness(ctx.work, ctx.liveness)
            # Pristine graphs are immutable once cached (schedulers get
            # copies), so each object is verified once — new cache entries
            # are picked up here, rebuilt ones by the build helpers.
            for graph in ctx.raw_graphs.values():
                if id(graph) not in ctx.verified_graph_ids:
                    self.check_graph(graph, reduced=False)
                    ctx.verified_graph_ids.add(id(graph))
            for graph in ctx.reduced_graphs.values():
                if id(graph) not in ctx.verified_graph_ids:
                    self.check_graph(graph, reduced=True)
                    ctx.verified_graph_ids.add(id(graph))
            if ctx.compilation is not None:
                self.check_scheduled(ctx.compilation, machine=ctx.machine)
        except IRVerificationError as exc:
            if exc.after_pass is None:
                exc.after_pass = after
            raise
        ctx.verify_boundaries += 1

    @staticmethod
    def _merged_labels(ctx: "PipelineContext") -> Set[str]:
        if ctx.formation is None:
            return set()
        merged: Set[str] = set()
        for info in ctx.formation.superblocks.values():
            merged.update(info.merged_labels)
        return merged

    @staticmethod
    def _fail(message: str, block: Optional[str] = None) -> None:
        raise IRVerificationError(message, block=block)

    # ------------------------------------------------------------------
    # Program structure and operands.
    # ------------------------------------------------------------------

    def check_program(
        self, program: Program, merged_labels: Optional[Set[str]] = None
    ) -> None:
        if not program.blocks:
            self._fail("program has no blocks")
        labels: Set[str] = set()
        for blk in program.blocks:
            if blk.label in labels:
                self._fail(f"duplicate block label {blk.label!r}")
            labels.add(blk.label)
        home_universe = labels | (merged_labels or set())
        seen_uids: Set[int] = set()
        for blk in program.blocks:
            for instr in blk.instrs:
                self._check_instruction(instr, blk, labels, home_universe, seen_uids)
        last = program.blocks[-1]
        if last.falls_through:
            self._fail(
                "control falls off the end of the program "
                f"(last block {last.label!r} has no terminator)",
                block=last.label,
            )

    def _check_instruction(
        self,
        instr: Instruction,
        blk: Block,
        labels: Set[str],
        home_universe: Set[str],
        seen_uids: Set[int],
    ) -> None:
        label = blk.label
        if instr.uid is None:
            self._fail(f"instruction without uid: {instr!r}", block=label)
        if instr.uid in seen_uids:
            self._fail(f"duplicate uid {instr.uid}", block=label)
        seen_uids.add(instr.uid)
        info = instr.info
        if info is not instr.op.info:
            self._fail(
                f"uid {instr.uid}: cached info is stale for opcode {instr.op.name}",
                block=label,
            )
        # Destination/operand shape.
        if info.has_dest:
            if instr.dest is None:
                self._fail(
                    f"uid {instr.uid}: {instr.op.name} requires a destination",
                    block=label,
                )
        elif instr.dest is not None and instr.op not in (Opcode.CHECK, Opcode.CLRTAG):
            self._fail(
                f"uid {instr.uid}: {instr.op.name} must not write a destination",
                block=label,
            )
        if instr.dest is not None and not isinstance(instr.dest, Register):
            self._fail(
                f"uid {instr.uid}: destination {instr.dest!r} is not a register",
                block=label,
            )
        for operand in instr.srcs:
            if not isinstance(operand, (Register, int, float)):
                self._fail(
                    f"uid {instr.uid}: operand {operand!r} is neither a "
                    "register nor an immediate",
                    block=label,
                )
        # Control-flow targets.
        if info.is_branch:
            if instr.target is None:
                self._fail(
                    f"uid {instr.uid}: branch {instr.op.name} has no target",
                    block=label,
                )
            if instr.target not in labels:
                self._fail(
                    f"uid {instr.uid}: dangling branch target {instr.target!r}",
                    block=label,
                )
        elif instr.target is not None and not info.is_call:
            self._fail(
                f"uid {instr.uid}: non-branch {instr.op.name} carries "
                f"target {instr.target!r}",
                block=label,
            )
        # Home-block invariant: the recorded home must resolve to a block
        # that still exists or was merged into a superblock.
        if instr.home_block is not None and instr.home_block not in home_universe:
            self._fail(
                f"uid {instr.uid}: home block {instr.home_block!r} names "
                "neither a current nor a merged label",
                block=label,
            )
        # Speculative modifier only on speculable opcodes (Appendix).
        if instr.spec and not instr.is_speculable:
            self._fail(
                f"uid {instr.uid}: speculative modifier on non-speculable "
                f"{instr.op.name}",
                block=label,
            )
        # Sentinel invariants: a sentinel protects at least one real uid.
        if instr.op in (Opcode.CHECK, Opcode.CONFIRM) and not instr.sentinel_for:
            self._fail(
                f"uid {instr.uid}: {instr.op.name} sentinel protects nothing",
                block=label,
            )

    # ------------------------------------------------------------------
    # Liveness / def-use consistency.
    # ------------------------------------------------------------------

    def check_liveness(self, work: Program, liveness) -> None:
        if liveness.program is not work:
            self._fail("liveness was computed over a different program (stale)")
        labels = {blk.label for blk in work.blocks}
        if set(liveness.live_in) != labels:
            missing = labels - set(liveness.live_in)
            extra = set(liveness.live_in) - labels
            self._fail(
                f"liveness out of sync with blocks (missing={sorted(missing)}, "
                f"stale={sorted(extra)})"
            )
        used = set()
        for instr in work.instructions():
            used.update(instr.uses())
        for label, live in liveness.live_in.items():
            for reg in live:
                if reg.is_zero:
                    self._fail(
                        f"zero register marked live-in at {label!r}", block=label
                    )
                if reg not in used:
                    self._fail(
                        f"register {reg!r} live-in at {label!r} but never used",
                        block=label,
                    )

    # ------------------------------------------------------------------
    # Dependence graphs.
    # ------------------------------------------------------------------

    def check_graph(self, graph: DepGraph, reduced: bool) -> None:
        block = graph.block
        label = block.label
        n = len(graph.nodes)
        if graph.original_count > n:
            self._fail("graph original_count exceeds node count", block=label)
        if graph.original_count != len(block.instrs):
            self._fail(
                f"graph covers {graph.original_count} instructions but block "
                f"holds {len(block.instrs)}",
                block=label,
            )
        for idx in range(graph.original_count):
            if graph.nodes[idx] is not block.instrs[idx]:
                self._fail(
                    f"graph node {idx} is not the block's instruction {idx}",
                    block=label,
                )
        if reduced:
            for name, members in (
                ("allowed_spec", graph.allowed_spec),
                ("unprotected", graph.unprotected),
            ):
                bad = [i for i in members if not 0 <= i < n]
                if bad:
                    self._fail(
                        f"reduction set {name} references missing nodes {bad}",
                        block=label,
                    )
        # Per-node register sets, hoisted out of the per-arc checks (zero
        # registers never carry a dependence, so they are excluded once).
        defs_nz = [
            frozenset(r for r in node.defs() if not r.is_zero)
            for node in graph.nodes
        ]
        uses_nz = [
            frozenset(r for r in node.uses() if not r.is_zero)
            for node in graph.nodes
        ]
        indegree = [0] * n
        for arc in graph.arcs():
            self._check_arc(graph, arc, label, defs_nz, uses_nz)
            indegree[arc.dst] += 1
        # Mirror consistency plus Kahn's algorithm for acyclicity.
        pred_total = sum(len(graph.preds(i)) for i in range(n))
        if pred_total != sum(indegree):
            self._fail("succ/pred adjacency out of sync", block=label)
        ready = [i for i in range(n) if indegree[i] == 0]
        emitted = 0
        while ready:
            node = ready.pop()
            emitted += 1
            for arc in graph.iter_succs(node):
                indegree[arc.dst] -= 1
                if indegree[arc.dst] == 0:
                    ready.append(arc.dst)
        if emitted != n:
            cyclic = [i for i in range(n) if indegree[i] > 0]
            self._fail(
                f"dependence graph has a cycle through nodes {cyclic}",
                block=label,
            )

    def _check_arc(
        self, graph: DepGraph, arc, label: str, defs_nz, uses_nz
    ) -> None:
        n = len(graph.nodes)
        if not (0 <= arc.src < n and 0 <= arc.dst < n):
            self._fail(f"arc {arc!r} references missing nodes", block=label)
        if arc.src == arc.dst:
            self._fail(f"self arc {arc!r}", block=label)
        if not isinstance(arc.kind, ArcKind):
            self._fail(f"arc {arc!r} has invalid kind {arc.kind!r}", block=label)
        if not isinstance(arc.latency, int) or arc.latency < 0:
            self._fail(f"arc {arc!r} has invalid latency", block=label)
        src = graph.nodes[arc.src]
        dst = graph.nodes[arc.dst]
        kind = arc.kind
        if kind is ArcKind.FLOW:
            if not defs_nz[arc.src].intersection(uses_nz[arc.dst]):
                self._fail(
                    f"FLOW arc {arc!r} without a produced-and-used register",
                    block=label,
                )
        elif kind is ArcKind.ANTI:
            if not uses_nz[arc.src].intersection(defs_nz[arc.dst]):
                self._fail(
                    f"ANTI arc {arc!r} without a read-then-written register",
                    block=label,
                )
        elif kind is ArcKind.OUTPUT:
            if not defs_nz[arc.src].intersection(defs_nz[arc.dst]):
                self._fail(
                    f"OUTPUT arc {arc!r} without a common destination",
                    block=label,
                )
        elif kind is ArcKind.MEM:
            for end, instr in (("src", src), ("dst", dst)):
                if not (instr.info.reads_mem or instr.info.writes_mem):
                    self._fail(
                        f"MEM arc {arc!r}: {end} does not access memory",
                        block=label,
                    )
        elif kind is ArcKind.CONTROL:
            if not src.info.is_cond_branch:
                self._fail(
                    f"CONTROL arc {arc!r} whose source is not a branch",
                    block=label,
                )
        elif kind is ArcKind.GUARD:
            if not (dst.info.is_control or src.info.is_irreversible):
                self._fail(
                    f"GUARD arc {arc!r} guarding neither an exit nor an "
                    "irreversible instruction",
                    block=label,
                )
        elif kind is ArcKind.SENT:
            if arc.src < graph.original_count and arc.dst < graph.original_count:
                self._fail(
                    f"SENT arc {arc!r} between two original instructions",
                    block=label,
                )

    # ------------------------------------------------------------------
    # Scheduled output (sentinel/home-block placement, issue width).
    # ------------------------------------------------------------------

    def check_scheduled(
        self,
        compilation,
        issue_rate: Optional[int] = None,
        machine=None,
    ) -> None:
        """Check the scheduled output against the source program.

        ``machine`` (a :class:`~repro.machine.description.MachineDescription`)
        subsumes ``issue_rate`` and additionally enforces the per-cycle
        resource limits (``branches_per_cycle`` / ``memory_ops_per_cycle``)
        on every word, via the same
        :func:`~repro.machine.resources.word_resource_violation` predicate
        the cycle simulators apply at run time.
        """
        check_limits = machine is not None and (
            machine.branches_per_cycle is not None
            or machine.memory_ops_per_cycle is not None
        )
        if check_limits:
            from ..machine.resources import word_resource_violation
        if issue_rate is None and machine is not None:
            issue_rate = machine.issue_width
        source = compilation.superblock_program
        source_blocks = source.block_map()
        for sched in compilation.scheduled.blocks:
            block = source_blocks.get(sched.label)
            if block is None:
                self._fail(
                    f"scheduled block {sched.label!r} has no source block",
                    block=sched.label,
                )
            scheduled_uids = set()
            for cycle, word in enumerate(sched.words):
                if issue_rate is not None and len(word) > issue_rate:
                    self._fail(
                        f"cycle {cycle} issues {len(word)} ops on a "
                        f"{issue_rate}-issue machine",
                        block=sched.label,
                    )
                if check_limits:
                    violation = word_resource_violation(word, machine)
                    if violation:
                        self._fail(
                            f"cycle {cycle}: {violation}", block=sched.label
                        )
                for instr in word:
                    if instr.uid in scheduled_uids:
                        self._fail(
                            f"uid {instr.uid} scheduled twice", block=sched.label
                        )
                    scheduled_uids.add(instr.uid)
                    if instr.spec and not instr.is_speculable:
                        self._fail(
                            f"uid {instr.uid}: speculative modifier on "
                            f"non-speculable {instr.op.name}",
                            block=sched.label,
                        )
                    if instr.op in (Opcode.CHECK, Opcode.CONFIRM):
                        # The Appendix pins sentinels inside their home block.
                        if instr.home_block != sched.label:
                            self._fail(
                                f"sentinel uid {instr.uid} (home "
                                f"{instr.home_block!r}) scheduled outside its "
                                "home block",
                                block=sched.label,
                            )
                        if not instr.sentinel_for:
                            self._fail(
                                f"sentinel uid {instr.uid} protects nothing",
                                block=sched.label,
                            )
            missing = [
                i.uid for i in block.instrs if i.uid not in scheduled_uids
            ]
            if missing:
                self._fail(
                    f"source instructions missing from schedule: {missing}",
                    block=sched.label,
                )


def verify_context(
    ctx: "PipelineContext",
    after: Optional[str] = None,
    verifier: Optional[IRVerifier] = None,
) -> None:
    """Convenience wrapper: run a (possibly shared) verifier over ``ctx``."""
    (verifier or IRVerifier()).verify(ctx, after=after)
