"""Pass-manager compilation pipeline with IR verification.

The front end of the compiler (Section 5.1's profile -> superblock ->
renaming -> dependence-graph flow) expressed as declarative passes over a
shared :class:`PipelineContext`, executed by a :class:`PassManager`,
optionally checked by an :class:`IRVerifier` at every pass boundary, and
timed per pass for the evaluation harness's observability surface.
"""

from .context import (
    CompilerStats,
    PassTiming,
    PipelineContext,
    PipelineOptions,
    TraceEvent,
)
from .manager import PassManager, PipelineError
from .passes import (
    DepGraphBuildPass,
    DepGraphReducePass,
    ListSchedulingPass,
    LivenessPass,
    LoopUnrollPass,
    Pass,
    RecoveryRenamingPass,
    RegisterRenamingPass,
    SuperblockFormationPass,
    UninitTagClearPass,
    backend_pipeline,
    default_pipeline,
    pristine_graph,
)
from .verify import IRVerificationError, IRVerifier, verify_context

__all__ = [
    "CompilerStats",
    "PassTiming",
    "PipelineContext",
    "PipelineOptions",
    "TraceEvent",
    "PassManager",
    "PipelineError",
    "Pass",
    "SuperblockFormationPass",
    "LoopUnrollPass",
    "RegisterRenamingPass",
    "RecoveryRenamingPass",
    "UninitTagClearPass",
    "LivenessPass",
    "DepGraphBuildPass",
    "DepGraphReducePass",
    "ListSchedulingPass",
    "default_pipeline",
    "backend_pipeline",
    "pristine_graph",
    "IRVerifier",
    "IRVerificationError",
    "verify_context",
]
