"""The pass manager: declarative execution of a compilation pipeline.

Runs a registered pass list over one :class:`~repro.pipeline.context.PipelineContext`,
enforcing each pass's ``requires`` declaration against the artifacts
produced so far, timing every pass (wall and CPU), and — when the context
was built with ``verify_ir`` — interleaving the
:class:`~repro.pipeline.verify.IRVerifier` after every stage so a broken
invariant is attributed to the pass that introduced it.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .context import PipelineContext
from .passes import Pass
from .verify import IRVerificationError, IRVerifier


class PipelineError(Exception):
    """A pass's declared requirements were not met."""


class PassManager:
    """Executes an ordered pass list over a pipeline context."""

    def __init__(
        self,
        passes: Sequence[Pass],
        verifier: Optional[IRVerifier] = None,
    ) -> None:
        self.passes: List[Pass] = list(passes)
        self.verifier = verifier or IRVerifier()

    # ------------------------------------------------------------------

    def run(self, ctx: PipelineContext) -> PipelineContext:
        """Run every pass in order; returns ``ctx`` for chaining."""
        verify = ctx.options.verify_ir
        if verify and ctx.verify_boundaries == 0:
            # Verify the pipeline input once; repeat (backend) runs over an
            # already-verified context skip straight to per-pass checks.
            self._verify(ctx, after=None)
        for pipeline_pass in self.passes:
            ran = self._run_one(pipeline_pass, ctx)
            if verify and ran:
                # A skipped pass changed nothing, so only executed passes
                # get a verification boundary.
                self._verify(
                    ctx,
                    after=pipeline_pass.name,
                    scope=pipeline_pass.verify_scope,
                )
        return ctx

    def _run_one(self, pipeline_pass: Pass, ctx: PipelineContext) -> bool:
        if not pipeline_pass.enabled(ctx):
            # A skipped pass neither consumes nor produces artifacts, but
            # the boundary is still recorded so the pass table is stable.
            ctx.record_pass(pipeline_pass.name, 0.0, 0.0)
            return False
        missing = [
            artifact
            for artifact in pipeline_pass.requires
            if artifact not in ctx.available
        ]
        if missing:
            raise PipelineError(
                f"pass {pipeline_pass.name!r} requires {missing} but only "
                f"{sorted(ctx.available)} are available — check pass order"
            )
        wall0, cpu0 = ctx.clocks()
        ctx.current_pass = pipeline_pass.name
        try:
            pipeline_pass.run(ctx)
            ctx.available.update(pipeline_pass.produces)
            ctx.available.difference_update(pipeline_pass.invalidates)
        finally:
            ctx.current_pass = None
        wall1, cpu1 = ctx.clocks()
        ctx.record_pass(pipeline_pass.name, wall1 - wall0, cpu1 - cpu0)
        return True

    def _verify(
        self, ctx: PipelineContext, after: Optional[str], scope: str = "full"
    ) -> None:
        wall0, cpu0 = ctx.clocks()
        try:
            self.verifier.verify(ctx, after=after, scope=scope)
        except IRVerificationError:
            raise
        finally:
            wall1, cpu1 = ctx.clocks()
            ctx.record_block(self.verifier.name, after, wall1 - wall0, cpu1 - cpu0)

    # ------------------------------------------------------------------

    def describe(self, ctx: Optional[PipelineContext] = None) -> str:
        """Human-readable pass table (the ``--passes`` CLI view)."""
        rows = []
        for pipeline_pass in self.passes:
            enabled = "-" if ctx is None else ("yes" if pipeline_pass.enabled(ctx) else "no")
            rows.append(
                (
                    pipeline_pass.name,
                    ", ".join(pipeline_pass.requires) or "-",
                    ", ".join(pipeline_pass.produces) or "-",
                    ", ".join(pipeline_pass.invalidates) or "-",
                    enabled,
                    pipeline_pass.summary(),
                )
            )
        headers = ("pass", "requires", "produces", "invalidates", "enabled", "what")
        widths = [
            max(len(headers[col]), *(len(row[col]) for row in rows))
            for col in range(5)
        ]
        lines = [
            "  ".join(headers[col].ljust(widths[col]) for col in range(5))
            + "  "
            + headers[5]
        ]
        for row in rows:
            lines.append(
                "  ".join(row[col].ljust(widths[col]) for col in range(5))
                + "  "
                + row[5]
            )
        return "\n".join(lines)
