"""The compilation stages, re-expressed as declarative passes.

Each pass wraps one stage of the paper's Section 5.1 flow — superblock
formation, loop unrolling, register renaming, recovery renaming,
uninitialized-tag clearing, liveness, dependence-graph build/reduce, and
list scheduling — and declares the artifacts it ``requires``,
``produces`` and ``invalidates`` so the
:class:`~repro.pipeline.manager.PassManager` can order-check and time the
pipeline.  The wrapped implementations are the same functions the
monolithic compiler called, so the default pipeline is byte-identical to
the pre-pipeline ``compile_program``.

The dependence-graph passes are *latency-gated*: graphs embed machine
latencies, so by default they defer to schedule time (see
:func:`pristine_graph`) and only build eagerly when the pipeline was
configured with a pinned latency table.  Both paths share the same
helpers, so timings and verification cover lazy builds too.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from ..cfg.liveness import Liveness
from ..cfg.profile import ProfileData
from ..cfg.superblock import form_superblocks
from ..cfg.unroll import unroll_superblock_loops
from ..core.uninit import insert_uninit_tag_clears
from ..deps.builder import build_dependence_graph
from ..deps.reduction import SpeculationPolicy, reduce_dependence_graph
from .context import PipelineContext
from .verify import IRVerifier

if TYPE_CHECKING:
    from ..deps.types import DepGraph
    from ..isa.program import Block
    from ..machine.description import MachineDescription


class Pass:
    """One compilation stage.

    Subclasses set ``name`` and the artifact declarations, and implement
    :meth:`run`.  :meth:`enabled` lets a pass opt out for configurations
    that do not need it (the manager still records the boundary, so
    ``--passes`` and the timing table keep a stable shape).
    """

    name: str = "?"
    requires: Tuple[str, ...] = ()
    produces: Tuple[str, ...] = ()
    invalidates: Tuple[str, ...] = ()
    #: What the verifier re-checks after this pass: ``"full"`` covers the
    #: whole context; ``"backend"`` covers only backend artifacts (the
    #: scheduled output and newly built graphs) for passes that do not
    #: restructure the program.
    verify_scope: str = "full"

    def enabled(self, ctx: PipelineContext) -> bool:
        return True

    def run(self, ctx: PipelineContext) -> None:
        raise NotImplementedError

    def summary(self) -> str:
        """First docstring line, for the ``--passes`` table."""
        doc = (self.__doc__ or "").strip()
        return doc.splitlines()[0] if doc else ""


# ----------------------------------------------------------------------
# Front-end passes (machine-independent).
# ----------------------------------------------------------------------


class SuperblockFormationPass(Pass):
    """Profile-driven trace selection, linearization, tail duplication."""

    name = "superblock"
    requires = ("program", "profile")
    produces = ("work", "formation")

    def run(self, ctx: PipelineContext) -> None:
        options = ctx.options
        if options.form_superblocks:
            formation = form_superblocks(
                ctx.program,
                ctx.profile,
                min_ratio=options.superblock_min_ratio,
                max_instructions=options.superblock_max_instructions,
            )
        else:
            # ratio > 1: no merging, but the same normalization runs.
            formation = form_superblocks(ctx.program, ProfileData(), min_ratio=2.0)
        ctx.formation = formation
        ctx.work = formation.program


class LoopUnrollPass(Pass):
    """Unroll self-loop superblocks by the configured factor."""

    name = "unroll"
    requires = ("work",)
    invalidates = ("liveness", "raw_graphs", "reduced_graphs")

    def enabled(self, ctx: PipelineContext) -> bool:
        return ctx.options.unroll_factor > 1

    def run(self, ctx: PipelineContext) -> None:
        unroll_superblock_loops(ctx.work, ctx.options.unroll_factor)


class RegisterRenamingPass(Pass):
    """Live-out def splitting (restriction 1) plus register renaming."""

    name = "rename"
    requires = ("work",)
    invalidates = ("liveness", "raw_graphs", "reduced_graphs")

    def enabled(self, ctx: PipelineContext) -> bool:
        return ctx.options.rename

    def run(self, ctx: PipelineContext) -> None:
        from ..sched.renaming import rename_registers, split_live_out_defs

        ctx.stats.defs_split = split_live_out_defs(ctx.work)
        # Recovery disables renaming-register recycling: the Section 3.7
        # Register Allocator Support (live ranges extended past sentinels).
        ctx.stats.registers_renamed = rename_registers(
            ctx.work, recycle=not ctx.options.recovery
        )


class RecoveryRenamingPass(Pass):
    """Rename self-update defs for Section 3.7 restartable sequences."""

    name = "recovery-rename"
    requires = ("work",)
    invalidates = ("liveness", "raw_graphs", "reduced_graphs")

    def enabled(self, ctx: PipelineContext) -> bool:
        return ctx.options.recovery

    def run(self, ctx: PipelineContext) -> None:
        # Imported lazily: core.recovery needs the scheduler, which this
        # package anchors.
        from ..core.recovery import rename_self_updates

        ctx.stats.recovery_renamed = rename_self_updates(ctx.work)


class UninitTagClearPass(Pass):
    """Insert entry-block ``clrtag``\\ s for uninitialized live-ins (§3.5)."""

    name = "uninit-clears"
    requires = ("work",)
    invalidates = ("liveness", "raw_graphs", "reduced_graphs")

    def enabled(self, ctx: PipelineContext) -> bool:
        return ctx.options.clear_uninit_tags and ctx.policy.sentinels

    def run(self, ctx: PipelineContext) -> None:
        ctx.stats.uninit_clears = len(insert_uninit_tag_clears(ctx.work))


class LivenessPass(Pass):
    """Iterative live-variable analysis over the transformed program."""

    name = "liveness"
    requires = ("work",)
    produces = ("liveness",)

    def run(self, ctx: PipelineContext) -> None:
        ctx.liveness = Liveness(ctx.work)


class DepGraphBuildPass(Pass):
    """Build per-block unreduced dependence graphs (latency-gated)."""

    name = "deps-build"
    requires = ("work", "liveness")
    produces = ("raw_graphs",)

    def enabled(self, ctx: PipelineContext) -> bool:
        # Recovery scheduling varies the build inputs per iteration and is
        # never cached; without a pinned latency table the build defers to
        # the first schedule (see pristine_graph).
        return ctx.options.latencies is not None and not ctx.options.recovery

    def run(self, ctx: PipelineContext) -> None:
        ctx.graph_latencies = dict(ctx.options.latencies)
        for block in ctx.work.blocks:
            build_raw_graph(ctx, block)


class DepGraphReducePass(Pass):
    """Reduce dependence graphs under the scheduling model (Appendix)."""

    name = "deps-reduce"
    requires = ("work", "liveness", "raw_graphs")
    produces = ("reduced_graphs",)

    def enabled(self, ctx: PipelineContext) -> bool:
        return ctx.options.latencies is not None and not ctx.options.recovery

    def run(self, ctx: PipelineContext) -> None:
        for block in ctx.work.blocks:
            reduced_pristine_graph(ctx, block, ctx.policy)


#: The Section 5.1 front end, in order.  ``prepare_compilation`` runs this.
def default_pipeline() -> List[Pass]:
    return [
        SuperblockFormationPass(),
        LoopUnrollPass(),
        RegisterRenamingPass(),
        RecoveryRenamingPass(),
        UninitTagClearPass(),
        LivenessPass(),
        DepGraphBuildPass(),
        DepGraphReducePass(),
    ]


# ----------------------------------------------------------------------
# Dependence-graph helpers shared by the eager passes and the lazy
# schedule-time path.  Lazy work is charged to the owning pass's timing
# entry, so per-pass observability is complete either way.
# ----------------------------------------------------------------------


def build_raw_graph(ctx: PipelineContext, block: "Block") -> "DepGraph":
    """The cached unreduced graph for ``block`` (built on first request)."""
    raw = ctx.raw_graphs.get(block.label)
    if raw is None:
        wall0, cpu0 = ctx.clocks()
        raw = build_dependence_graph(
            block, ctx.liveness, ctx.graph_latencies, irreversible_barriers=False
        )
        wall1, cpu1 = ctx.clocks()
        ctx.record_block(
            DepGraphBuildPass.name, block.label, wall1 - wall0, cpu1 - cpu0
        )
        ctx.raw_graphs[block.label] = raw
        if ctx.options.verify_ir:
            IRVerifier().check_graph(raw, reduced=False)
            ctx.verified_graph_ids.add(id(raw))
    return raw


def reduced_pristine_graph(
    ctx: PipelineContext, block: "Block", policy: SpeculationPolicy
) -> "DepGraph":
    """The cached built-and-reduced graph for ``(block, policy)``.

    The unreduced graph is policy-independent, so it is built once per
    block and each policy reduces a copy — sentinel_store scheduling asks
    for two policies' graphs per block (its plain-sentinel comparison
    schedule), and a prepared compilation shared across policies would
    otherwise rebuild from scratch for each.
    """
    key = (block.label, policy.name)
    graph = ctx.reduced_graphs.get(key)
    if graph is None:
        raw = build_raw_graph(ctx, block)
        wall0, cpu0 = ctx.clocks()
        graph = reduce_dependence_graph(
            raw.copy(), ctx.liveness, policy, stop_at_irreversible=False
        )
        wall1, cpu1 = ctx.clocks()
        ctx.record_block(
            DepGraphReducePass.name, block.label, wall1 - wall0, cpu1 - cpu0
        )
        ctx.reduced_graphs[key] = graph
        # Populate the critical-heights memo on the pristine graph itself:
        # DepGraph.copy() shares the memoized list, so every schedule-time
        # copy (one per candidate weight vector in a tuning run) inherits
        # the heights instead of recomputing them.  Safe to share — the
        # scheduler treats heights as read-only and arc mutations rebind
        # the copy's memo slot only.
        graph.critical_heights()
        if ctx.options.verify_ir:
            IRVerifier().check_graph(graph, reduced=True)
            ctx.verified_graph_ids.add(id(graph))
    return graph


def pristine_graph(
    ctx: PipelineContext,
    block: "Block",
    machine: "MachineDescription",
    policy: SpeculationPolicy,
) -> Optional["DepGraph"]:
    """A private copy of the reduced dependence graph for ``block``.

    Graphs embed arc latencies, so the cache serves one latency table
    (the first machine seen — in a sweep, every issue rate shares
    Table 3).  A machine with a different table gets ``None`` and the
    scheduler rebuilds from scratch.  Recovery scheduling varies the
    reduction inputs per iteration and is never cached.
    """
    if ctx.options.recovery:
        return None
    if ctx.graph_latencies is None:
        ctx.graph_latencies = dict(machine.latencies)
    elif ctx.graph_latencies != machine.latencies:
        return None
    return reduced_pristine_graph(ctx, block, policy).copy()


def recovery_pristine_graphs(
    ctx: PipelineContext,
    block: "Block",
    machine: "MachineDescription",
    policy: SpeculationPolicy,
) -> Tuple[Optional["DepGraph"], Optional[dict]]:
    """Shared pristine graph state for the recovery restart loop.

    Recovery scheduling builds its graph with irreversible barriers and
    re-reduces per restart iteration, so :func:`pristine_graph`'s cache
    does not apply to it.  What *is* iteration- and machine-independent
    (one latency table serves every issue rate, as above) is cached here
    instead: the unreduced barrier graph, and the per-despeculation-set
    reduction memo the restart loop fills and reuses.
    :func:`~repro.core.recovery.schedule_block_with_recovery` copies the
    graphs before use; the cached objects are never mutated.  The build
    work stays charged to the schedule pass's timing entry, like every
    other recovery-mode graph cost.
    """
    if ctx.graph_latencies is None:
        ctx.graph_latencies = dict(machine.latencies)
    elif ctx.graph_latencies != machine.latencies:
        return None, None
    raw = ctx.recovery_raw_graphs.get(block.label)
    if raw is None:
        raw = build_dependence_graph(
            block, ctx.liveness, machine.latencies, irreversible_barriers=True
        )
        ctx.recovery_raw_graphs[block.label] = raw
    memo = ctx.recovery_reduce_memo.setdefault((block.label, policy.name), {})
    return raw, memo


# ----------------------------------------------------------------------
# Back end: list scheduling as a pass.
# ----------------------------------------------------------------------


class ListSchedulingPass(Pass):
    """List-schedule every block for one machine (with sentinel insertion)."""

    name = "schedule"
    requires = ("work", "liveness")
    produces = ("compilation",)
    # Scheduling reorders instructions into words and toggles speculative
    # modifiers but never restructures the superblock program, so the
    # post-pass verification covers the scheduled output (which re-checks
    # the modifier invariant) instead of re-walking the whole program.
    verify_scope = "backend"

    def run(self, ctx: PipelineContext) -> None:
        from dataclasses import replace

        from ..sched.compiler import CompilationResult
        from ..sched.list_scheduler import schedule_block
        from ..sched.schedule import ScheduledBlock, ScheduledProgram

        work = ctx.work
        machine = ctx.machine
        policy = ctx.schedule_policy or ctx.policy
        # Priority weights: per-schedule override, then the pipeline
        # option, then (None) the paper's default heuristic.  The front
        # end is weight-independent — weights only order the ready list —
        # so any vector schedules from the same prepared artifacts.
        weights = (
            ctx.schedule_weights
            if ctx.schedule_weights is not None
            else ctx.options.weights
        )
        # Vectorized per-node priorities from the batch scheduling engine
        # (ScheduleBatchPass); maps (block label, graph policy name) to
        # the priority row matching ``weights``.
        priorities_map = ctx.schedule_priorities or {}
        recovery = ctx.options.recovery
        liveness = ctx.liveness
        work.reset_uid_watermark(ctx.uid_watermark)
        stats = replace(ctx.stats)

        scheduled_blocks: List[ScheduledBlock] = []
        block_results = {}
        for block in work.blocks:
            wall0, cpu0 = ctx.clocks()
            if recovery:
                from ..core.recovery import schedule_block_with_recovery

                raw, memo = recovery_pristine_graphs(ctx, block, machine, policy)
                result = schedule_block_with_recovery(
                    block,
                    work,
                    liveness,
                    machine,
                    policy,
                    raw_graph=raw,
                    reduce_cache=memo,
                    weights=weights,
                )
            else:
                result = schedule_block(
                    block,
                    work,
                    liveness,
                    machine,
                    policy,
                    graph=pristine_graph(ctx, block, machine, policy),
                    weights=weights,
                    priorities=priorities_map.get((block.label, policy.name)),
                )
                if policy.store_spec and policy.sentinels:
                    # Speculating stores is not always profitable:
                    # probationary entries occupy the buffer until confirmed
                    # and the N-1 separation constraint can stretch the
                    # schedule.  Keep the store-speculation schedule only
                    # when it is strictly shorter than the plain sentinel
                    # schedule for this block.
                    from ..deps.reduction import SENTINEL

                    with_stores_length = result.scheduled.length
                    plain = schedule_block(
                        block,
                        work,
                        liveness,
                        machine,
                        SENTINEL,
                        graph=pristine_graph(ctx, block, machine, SENTINEL),
                        weights=weights,
                        priorities=priorities_map.get((block.label, SENTINEL.name)),
                    )
                    if with_stores_length < plain.scheduled.length:
                        # Re-run the winner: scheduling mutates the
                        # speculative modifier flags on the block's
                        # instructions, and the last run must match the
                        # schedule we keep.
                        result = schedule_block(
                            block,
                            work,
                            liveness,
                            machine,
                            policy,
                            graph=pristine_graph(ctx, block, machine, policy),
                            weights=weights,
                            priorities=priorities_map.get(
                                (block.label, policy.name)
                            ),
                        )
                    else:
                        result = plain
            wall1, cpu1 = ctx.clocks()
            ctx.record_block(self.name, block.label, wall1 - wall0, cpu1 - cpu0)
            scheduled_blocks.append(result.scheduled)
            block_results[block.label] = result
            stats.blocks += 1
            stats.instructions += result.stats.instructions
            stats.speculative += result.stats.speculative
            stats.checks_inserted += result.stats.checks_inserted
            stats.confirms_inserted += result.stats.confirms_inserted
            stats.schedule_words += result.stats.length

        scheduled = ScheduledProgram(
            blocks=scheduled_blocks,
            source=work,
            policy_name=policy.name,
            machine_name=machine.name,
        )
        ctx.compilation = CompilationResult(
            scheduled=scheduled,
            superblock_program=work,
            formation=ctx.formation,
            block_results=block_results,
            stats=stats,
        )


def backend_pipeline() -> List[Pass]:
    """The machine-dependent back half; ``schedule_prepared`` runs this."""
    return [ListSchedulingPass()]


class ScheduleBatchPass(Pass):
    """Schedule a population of priority-weight candidates in one pass.

    The multi-candidate variant of :class:`ListSchedulingPass`: the
    batch scheduling engine (:mod:`repro.sched.batch_scheduler`) groups
    ``ctx.schedule_population`` by priority-ordering signature, and each
    unique group runs the ordinary scheduling pass once — with the uid
    watermark rewound, so every group's result is uid-identical to a
    sequential ``schedule_prepared`` call — receiving its precomputed
    vectorized priority rows.  Per-group results are routed through
    ``ctx.schedule_batch_consume`` while their words are live (later
    groups rewrite the shared instructions' speculative flags) and the
    aligned outputs land in ``ctx.schedule_batch_results``.
    """

    name = "schedule-batch"
    requires = ("work", "liveness")
    produces = ("compilation",)
    verify_scope = "backend"

    def run(self, ctx: PipelineContext) -> None:
        from ..sched.batch_scheduler import plan_groups

        population = ctx.schedule_population or []
        consume = ctx.schedule_batch_consume
        policy = ctx.schedule_policy or ctx.policy
        groups = plan_groups(
            ctx, ctx.machine, policy, population, ctx.schedule_signatures
        )
        inner = ListSchedulingPass()
        outputs: List[object] = [None] * len(population)
        for members, priorities in groups:
            ctx.schedule_weights = population[members[0]]
            ctx.schedule_priorities = priorities
            ctx.compilation = None
            inner.run(ctx)
            value = (
                consume(ctx.compilation) if consume is not None else ctx.compilation
            )
            for index in members:
                outputs[index] = value
        ctx.schedule_weights = None
        ctx.schedule_priorities = None
        ctx.schedule_batch_results = outputs


def batch_backend_pipeline() -> List[Pass]:
    """The multi-candidate back half; ``schedule_prepared_batch`` runs this."""
    return [ScheduleBatchPass()]
