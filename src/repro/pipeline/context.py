"""Shared state threaded through the compilation pipeline.

A :class:`PipelineContext` carries everything the front-end passes
(Section 5.1's profile -> superblock -> renaming -> dependence-graph flow)
produce and consume: the input program and profile, the transformed
superblock program, per-block artifacts (liveness, pristine dependence
graphs), accumulated :class:`CompilerStats`, and per-pass timings.

The context deliberately knows nothing about individual passes — passes
declare what they ``require``/``produce``/``invalidate`` and the
:class:`~repro.pipeline.manager.PassManager` enforces those declarations
against :attr:`PipelineContext.available`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from ..cfg.profile import ProfileData
from ..deps.reduction import SpeculationPolicy
from ..isa.program import Program

if TYPE_CHECKING:  # imported for annotations only — avoids import cycles
    from ..cfg.liveness import Liveness
    from ..cfg.superblock import FormationResult
    from ..deps.types import DepGraph
    from ..isa.opcodes import LatClass
    from ..machine.description import MachineDescription
    from ..sched.compiler import CompilationResult
    from ..sched.priority import PriorityWeights


@dataclass
class CompilerStats:
    """Aggregated scheduling statistics for one compilation."""

    blocks: int = 0
    instructions: int = 0
    speculative: int = 0
    checks_inserted: int = 0
    confirms_inserted: int = 0
    schedule_words: int = 0
    recovery_renamed: int = 0
    uninit_clears: int = 0
    registers_renamed: int = 0
    defs_split: int = 0


@dataclass(frozen=True)
class PipelineOptions:
    """Configuration of one compilation pipeline run.

    Mirrors the keyword surface of :func:`repro.sched.compiler.compile_program`;
    the observability knobs (``verify_ir``, ``trace``) and the optional
    eager-graph latency table are pipeline-only additions.
    """

    policy: SpeculationPolicy
    recovery: bool = False
    clear_uninit_tags: bool = True
    form_superblocks: bool = True
    superblock_min_ratio: float = 0.6
    superblock_max_instructions: int = 256
    unroll_factor: int = 1
    rename: bool = True
    #: Run the IR verifier after every pass (and on lazily built graphs).
    verify_ir: bool = False
    #: Record per-pass, per-block trace events (``--trace-passes``).
    trace: bool = False
    #: When set, the dependence-graph passes build eagerly under this
    #: latency table at prepare time; otherwise graphs are built lazily at
    #: first schedule (identical results — the sweep's machines all share
    #: Table 3 latencies).
    latencies: Optional[Dict["LatClass", int]] = None
    #: List-scheduler priority weights (``None`` = the paper's default
    #: heuristic, byte-identical schedules).  Overridable per schedule via
    #: ``schedule_prepared(weights=...)`` — the front end is
    #: weight-independent, so one prepared compilation serves any vector.
    weights: Optional["PriorityWeights"] = None


@dataclass
class PassTiming:
    """Accumulated cost of one (possibly repeated or lazy) pass."""

    name: str
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    runs: int = 0


@dataclass
class TraceEvent:
    """One ``--trace-passes`` record: a pass applied to one unit of work."""

    pass_name: str
    #: Block label for per-block work, ``None`` for whole-program passes.
    block: Optional[str]
    wall_seconds: float
    cpu_seconds: float


class PipelineContext:
    """Mutable state shared by every pass of one compilation."""

    def __init__(
        self,
        program: Program,
        profile: ProfileData,
        options: PipelineOptions,
    ) -> None:
        self.program = program
        self.profile = profile
        self.options = options
        self.policy = options.policy
        # ---- artifacts produced by front-end passes -------------------
        self.formation: Optional["FormationResult"] = None
        #: The transformed superblock program (owns every uid).
        self.work: Optional[Program] = None
        self.liveness: Optional["Liveness"] = None
        #: block label -> unreduced dependence graph.
        self.raw_graphs: Dict[str, "DepGraph"] = {}
        #: (block label, policy name) -> reduced pristine graph.
        self.reduced_graphs: Dict[Tuple[str, str], "DepGraph"] = {}
        #: block label -> unreduced recovery graph (irreversible barriers
        #: in); shared by every issue rate's restart loop.
        self.recovery_raw_graphs: Dict[str, "DepGraph"] = {}
        #: (block label, policy name) -> {despeculated set -> pristine
        #: recovery-mode reduction}.  Restart loops at different issue
        #: rates walk the same despeculation states, so the reductions are
        #: shared across rates (and across arc-only restarts within one).
        self.recovery_reduce_memo: Dict[Tuple[str, str], Dict[frozenset, "DepGraph"]] = {}
        #: Latency table the cached graphs embed (first machine seen).
        self.graph_latencies: Optional[Dict["LatClass", int]] = None
        #: (block label, policy name) -> static per-node feature matrix of
        #: the pristine reduced graph (heights/succs/latency/memory/branch/
        #: speculative columns), built lazily by the batch scheduling
        #: engine and weight-independent like the graphs themselves.
        self.sched_features: Dict[Tuple[str, str], object] = {}
        self.stats = CompilerStats()
        self.uid_watermark: Optional[int] = None
        # ---- back-end scratch (set per schedule_prepared call) --------
        self.machine: Optional["MachineDescription"] = None
        self.schedule_policy: Optional[SpeculationPolicy] = None
        #: Per-schedule priority-weights override (falls back to
        #: ``options.weights``, then the paper default).
        self.schedule_weights: Optional["PriorityWeights"] = None
        #: Precomputed per-node priorities for the *current* schedule run:
        #: (block label, policy name) -> list of floats, or None.  Set by
        #: ScheduleBatchPass so the scheduler skips the per-node python
        #: priority loop for non-default candidates.
        self.schedule_priorities: Optional[Dict[Tuple[str, str], List[float]]] = None
        self.compilation: Optional["CompilationResult"] = None
        # ---- batch-schedule scratch (set per schedule_prepared_batch) -
        #: Candidate weight population for ScheduleBatchPass (one entry
        #: per candidate; ``None`` = the paper default heuristic).
        self.schedule_population: Optional[List[Optional["PriorityWeights"]]] = None
        #: Per-candidate dedup signatures aligned with the population
        #: (``None`` entries schedule individually), or None to compute.
        self.schedule_signatures: Optional[List[object]] = None
        #: Per-result consumer: candidates sharing one schedule object
        #: would otherwise observe later groups' spec-flag rewrites.
        self.schedule_batch_consume = None
        #: ScheduleBatchPass output, aligned with the population.
        self.schedule_batch_results: Optional[List[object]] = None
        # ---- observability -------------------------------------------
        #: Artifact names currently valid (requires/invalidates checking).
        self.available: Set[str] = {"program", "profile"}
        #: pass name -> accumulated timing, in first-run order.
        self.timings: Dict[str, PassTiming] = {}
        self.trace: List[TraceEvent] = []
        #: Name of the pass the manager is currently executing, if any.
        #: Lazy helpers use it to avoid double-charging eager pass runs.
        self.current_pass: Optional[str] = None
        #: ids of cached graphs the verifier has already checked.  Pristine
        #: graphs are immutable once built (schedulers receive copies), so
        #: each is verified once instead of at every pass boundary.
        self.verified_graph_ids: Set[int] = set()
        #: Pass boundaries verified so far (lets repeat backend runs skip
        #: the redundant entry re-verification).
        self.verify_boundaries: int = 0

    # ------------------------------------------------------------------
    # Timing accumulation.
    # ------------------------------------------------------------------

    def record_pass(self, name: str, wall: float, cpu: float) -> None:
        """Charge one whole-pass execution (called by the manager)."""
        timing = self.timings.get(name)
        if timing is None:
            timing = self.timings[name] = PassTiming(name)
        timing.wall_seconds += wall
        timing.cpu_seconds += cpu
        timing.runs += 1

    def record_block(
        self, name: str, block: Optional[str], wall: float, cpu: float
    ) -> None:
        """Charge one block's worth of work performed under pass ``name``.

        When the manager is currently executing that very pass the seconds
        are already covered by its whole-pass measurement, so only the
        trace event is emitted; lazy work (graphs built at schedule time)
        is charged to the pass's timing entry as well.
        """
        if self.options.trace:
            self.trace.append(TraceEvent(name, block, wall, cpu))
        if self.current_pass != name:
            timing = self.timings.get(name)
            if timing is None:
                timing = self.timings[name] = PassTiming(name)
            timing.wall_seconds += wall
            timing.cpu_seconds += cpu

    def pass_seconds(self) -> Dict[str, float]:
        """pass name -> accumulated wall seconds (insertion-ordered)."""
        return {name: t.wall_seconds for name, t in self.timings.items()}

    # ------------------------------------------------------------------

    @staticmethod
    def clocks() -> Tuple[float, float]:
        """(wall, cpu) timestamps from one consistent clock pair."""
        return time.perf_counter(), time.process_time()
