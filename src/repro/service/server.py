"""The asyncio HTTP/1.1 front end.

Stdlib only: requests are parsed by hand off ``asyncio`` streams (the
container deliberately has no third-party web framework).  The protocol
surface is small and boring — JSON in, JSON out, ``Content-Length``
framing, keep-alive by default — because the interesting machinery is
behind it:

**Single-flight coalescing.**  Each job's content address (see
:mod:`repro.service.model`) indexes a map of in-flight futures.  The
first request for a key submits the job to the process pool and parks a
future; every identical request that arrives while it runs awaits the
same future and shares the identical ``result`` payload.  Requests that
arrive *after* completion hit the on-disk cache inside the worker.
Either way an identical request burst performs exactly one compile.

**Backpressure.**  Admission is bounded by ``max_pending`` jobs
(submitted, not yet finished).  Beyond that the server answers
``429`` with a ``Retry-After`` header instead of queueing without
bound — coalesced waiters are exempt because they add no work.

**Observability.**  ``/v1/metrics`` exposes request counts by endpoint
and status, job counters (compiles, cache hits, coalesces, rejections),
live queue depth, and the pass-manager's per-pass seconds aggregated
across compile requests; each response carries its ``request_id``,
wall time, and (when it compiled) its own pass table.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from typing import Dict, Optional

from .model import ENDPOINTS, Job, ServiceError, normalize_request
from .workers import run_job

__all__ = ["SentinelService", "ServiceConfig", "ServiceThread", "serve"]

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


@dataclass
class ServiceConfig:
    host: str = "127.0.0.1"
    #: 0 = ephemeral (the bound port is published on ``service.port``).
    port: int = 8321
    #: Jobs admitted but not yet finished before new work gets a 429.
    max_pending: int = 32
    #: Process-pool width for CPU-bound jobs (this box's sweet spot is
    #: the CPU count; jobs are single-process inside).
    workers: int = 1
    #: Compile-cache directory shared with the workers; ``None`` honours
    #: ``$REPRO_CACHE_DIR`` / the per-user default.
    cache_dir: Optional[str] = None
    #: Seconds clients should wait before retrying a 429.
    retry_after: int = 1
    #: Request body ceiling; serde programs are a few KB, sweeps less.
    max_body: int = 8 << 20


@dataclass
class _Metrics:
    started: float = 0.0
    requests_total: int = 0
    by_endpoint: Dict[str, int] = field(default_factory=dict)
    by_status: Dict[str, int] = field(default_factory=dict)
    submitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    coalesced: int = 0
    compiled: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_corrupt: int = 0
    pass_seconds: Dict[str, float] = field(default_factory=dict)
    #: Batch scheduling engine counters summed over sweep jobs.
    sched_counters: Dict[str, int] = field(default_factory=dict)


class SentinelService:
    """One server instance: pool + listener + coalescing/metrics state."""

    def __init__(self, config: ServiceConfig = ServiceConfig()) -> None:
        self.config = config
        self.port: Optional[int] = None
        self._pool: Optional[ProcessPoolExecutor] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._inflight: Dict[str, asyncio.Future] = {}
        self._pending = 0
        self._request_counter = 0
        self._metrics = _Metrics()
        self._connections: set = set()

    # -- lifecycle ----------------------------------------------------

    async def start(self) -> None:
        from ..core.parallel import pool_env, pool_init

        if self.config.cache_dir is not None:
            # Ship the cache directory to the workers the same way the
            # CLI fan-outs do: via the pool-env snapshot.
            os.environ["REPRO_CACHE_DIR"] = str(self.config.cache_dir)
        self._metrics.started = time.time()
        self._pool = ProcessPoolExecutor(
            max_workers=self.config.workers,
            initializer=pool_init,
            initargs=(pool_env(),),
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Nudge idle keep-alive connections shut, then wait for their
        # handler tasks so the loop closes clean.
        for writer in list(self._connections):
            try:
                writer.close()
            except Exception:
                pass
        for _ in range(100):
            if not self._connections:
                break
            await asyncio.sleep(0.05)
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        async with self._server:
            await self._server.serve_forever()

    # -- HTTP plumbing ------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        self._connections.add(writer)
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, headers, body = request
                keep_alive = headers.get("connection", "keep-alive") != "close"
                if "_oversize" in headers:
                    status, payload, extra = (
                        413,
                        {"error": f"body exceeds {self.config.max_body} bytes"},
                        None,
                    )
                else:
                    status, payload, extra = await self._route(method, path, body)
                self._count_request(path, status)
                await self._write_response(
                    writer, status, payload, keep_alive, extra
                )
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
            asyncio.LimitOverrunError,
            ValueError,  # malformed request line / header overrun
        ):
            pass
        finally:
            self._connections.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, RuntimeError):
                pass

    async def _read_request(self, reader):
        request_line = await reader.readline()
        if not request_line:
            return None
        try:
            method, path, _version = request_line.decode("latin-1").split()
        except ValueError:
            raise asyncio.IncompleteReadError(request_line, None)
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > self.config.max_body:
            # Drain nothing; answer and drop the connection.
            return method, path, {"connection": "close", "_oversize": "1"}, b""
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    async def _write_response(
        self, writer, status, payload, keep_alive, extra_headers
    ) -> None:
        body = (json.dumps(payload) + "\n").encode()
        head = [
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in (extra_headers or {}).items():
            head.append(f"{name}: {value}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + body)
        await writer.drain()

    # -- routing ------------------------------------------------------

    async def _route(self, method, path, body):
        """Returns (status, payload, extra headers)."""
        try:
            if path == "/v1/health":
                if method != "GET":
                    raise ServiceError(405, "health is GET-only")
                return 200, self._health_payload(), None
            if path == "/v1/metrics":
                if method != "GET":
                    raise ServiceError(405, "metrics is GET-only")
                return 200, self._metrics_payload(), None
            if path.startswith("/v1/"):
                endpoint = path[len("/v1/"):]
                if endpoint not in ENDPOINTS:
                    raise ServiceError(404, f"unknown endpoint {endpoint!r}")
                if method != "POST":
                    raise ServiceError(405, f"{endpoint} is POST-only")
                try:
                    data = json.loads(body.decode() or "{}")
                except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                    raise ServiceError(400, f"bad JSON body: {exc}") from exc
                return 200, await self._run(normalize_request(endpoint, data)), None
            raise ServiceError(404, f"no route for {path!r}")
        except ServiceError as exc:
            extra = None
            if exc.retry_after is not None:
                extra = {"Retry-After": str(exc.retry_after)}
            return exc.status, {"error": exc.message}, extra

    def _count_request(self, path, status) -> None:
        m = self._metrics
        m.requests_total += 1
        endpoint = path[len("/v1/"):] if path.startswith("/v1/") else path
        m.by_endpoint[endpoint] = m.by_endpoint.get(endpoint, 0) + 1
        m.by_status[str(status)] = m.by_status.get(str(status), 0) + 1

    # -- job execution ------------------------------------------------

    async def _run(self, job: Job) -> dict:
        start = time.perf_counter()
        self._request_counter += 1
        request_id = f"req-{self._request_counter:06d}"
        m = self._metrics

        inflight = self._inflight.get(job.key)
        if inflight is not None:
            m.coalesced += 1
            # shield(): one waiter's disconnect must not cancel the
            # shared job out from under the others.
            outcome = await asyncio.shield(inflight)
            coalesced = True
        else:
            if self._pending >= self.config.max_pending:
                m.rejected += 1
                raise ServiceError(
                    429,
                    f"{self._pending} jobs pending (limit "
                    f"{self.config.max_pending}); retry later",
                    retry_after=self.config.retry_after,
                )
            outcome = await self._submit(job)
            coalesced = False

        kind, payload = outcome
        if kind == "error":
            raise ServiceError(500, payload)
        meta = payload["meta"]
        if coalesced:
            meta = dict(meta, cache_hit=False)
        response = {
            "request_id": request_id,
            "endpoint": job.endpoint,
            "key": job.key,
            "coalesced": coalesced,
            "cache_hit": bool(meta.get("cache_hit")),
            "wall_ms": round((time.perf_counter() - start) * 1e3, 3),
            "result": payload["result"],
        }
        if meta.get("pass_seconds"):
            response["pass_seconds"] = meta["pass_seconds"]
        return response

    async def _submit(self, job: Job):
        """Run one job in the pool, publishing its future for coalescers."""
        m = self._metrics
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._inflight[job.key] = future
        self._pending += 1
        m.submitted += 1
        try:
            payload = await loop.run_in_executor(
                self._pool,
                partial(
                    run_job,
                    job.endpoint,
                    job.params,
                    job.key,
                    self.config.cache_dir,
                ),
            )
            self._absorb_meta(payload["meta"])
            m.completed += 1
            outcome = ("ok", payload)
        except Exception as exc:  # worker died, unpicklable, job raised
            m.failed += 1
            outcome = ("error", f"{type(exc).__name__}: {exc}")
        finally:
            self._pending -= 1
            self._inflight.pop(job.key, None)
        future.set_result(outcome)
        return outcome

    def _absorb_meta(self, meta: dict) -> None:
        m = self._metrics
        if meta.get("compiled"):
            m.compiled += 1
        counters = meta.get("cache") or {}
        if meta.get("cache_hit"):
            m.cache_hits += 1
        else:
            m.cache_misses += 1
        m.cache_corrupt += counters.get("corrupt", 0)
        for name, seconds in (meta.get("pass_seconds") or {}).items():
            m.pass_seconds[name] = m.pass_seconds.get(name, 0.0) + seconds
        for name, count in (meta.get("sched") or {}).items():
            m.sched_counters[name] = m.sched_counters.get(name, 0) + count

    # -- introspection payloads ---------------------------------------

    def _health_payload(self) -> dict:
        return {
            "status": "ok",
            "uptime_seconds": round(time.time() - self._metrics.started, 3),
            "queue_depth": self._pending,
        }

    def _metrics_payload(self) -> dict:
        m = self._metrics
        return {
            "uptime_seconds": round(time.time() - m.started, 3),
            "requests": {
                "total": m.requests_total,
                "by_endpoint": dict(m.by_endpoint),
                "by_status": dict(m.by_status),
            },
            "jobs": {
                "submitted": m.submitted,
                "completed": m.completed,
                "failed": m.failed,
                "rejected": m.rejected,
                "coalesced": m.coalesced,
                "compiled": m.compiled,
            },
            "cache": {
                "hits": m.cache_hits,
                "misses": m.cache_misses,
                "corrupt": m.cache_corrupt,
                "coalesced": m.coalesced,
            },
            "queue": {
                "depth": self._pending,
                "max_pending": self.config.max_pending,
            },
            "pass_seconds": dict(m.pass_seconds),
            "sched": dict(m.sched_counters),
        }


class ServiceThread:
    """An in-process server for tests and benchmarks.

    Runs a :class:`SentinelService` on its own event loop in a daemon
    thread; ``port`` is available once the context is entered (use
    ``port=0`` for an ephemeral port).
    """

    def __init__(self, **config_kwargs) -> None:
        config_kwargs.setdefault("port", 0)
        self.config = ServiceConfig(**config_kwargs)
        self.service = SentinelService(self.config)
        self.port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._startup_error: Optional[BaseException] = None

    def __enter__(self) -> "ServiceThread":
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=60):
            raise RuntimeError("service thread did not start in time")
        if self._startup_error is not None:
            raise RuntimeError("service failed to start") from self._startup_error
        self.port = self.service.port
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self._main())
        finally:
            self._loop.close()

    async def _main(self) -> None:
        self._stop = asyncio.Event()
        try:
            await self.service.start()
        except BaseException as exc:
            self._startup_error = exc
            self._started.set()
            raise
        self._started.set()
        await self._stop.wait()
        await self.service.stop()


def serve(config: ServiceConfig) -> int:
    """Blocking entry point behind ``python -m repro --serve``."""

    async def _serve() -> None:
        service = SentinelService(config)
        await service.start()
        print(
            f"sentinel service listening on "
            f"http://{config.host}:{service.port} "
            f"(workers={config.workers}, max_pending={config.max_pending})",
            flush=True,
        )
        try:
            await service.serve_forever()
        finally:
            await service.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0
