"""Sentinel scheduling as a long-running service.

The ROADMAP's north star is serving compilation and simulation to many
clients, not one CLI run at a time.  This package is that boundary:

- :mod:`repro.service.model` — the request/job model.  Every request is
  normalized (unknown fields rejected, defaults applied) and then
  content-addressed with the compile cache's digest machinery, so the
  job key is a pure function of what the job computes.
- :mod:`repro.service.workers` — the CPU-bound job bodies, plain
  picklable functions executed in the :mod:`repro.core.parallel`
  process pool.  Workers consult and populate the shared on-disk
  compile cache themselves, so results survive server restarts.
- :mod:`repro.service.server` — the asyncio HTTP/1.1 front end
  (stdlib only), with single-flight coalescing of identical in-flight
  requests, bounded-queue backpressure (429 + ``Retry-After``), and
  ``/v1/metrics`` observability.
- :mod:`repro.service.client` — a small blocking client used by the
  tests and the load generator.

Start one with ``python -m repro --serve [--port N]``.
"""

from .client import ServiceClient, ServiceHTTPError
from .model import Job, ServiceError, normalize_request
from .server import SentinelService, ServiceConfig, ServiceThread

__all__ = [
    "Job",
    "SentinelService",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceHTTPError",
    "ServiceThread",
    "normalize_request",
]
