"""A small blocking HTTP client for the service.

Built on :mod:`http.client` (stdlib), one persistent keep-alive
connection per client instance — tests, the load generator and the perf
trajectory all talk to the server through this, so the protocol surface
is exercised end to end by everything that measures it.  Not
thread-safe: give each thread its own client (connections are cheap).
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Dict, Optional

__all__ = ["ServiceClient", "ServiceHTTPError"]


class ServiceHTTPError(RuntimeError):
    """A non-200 response, carrying status, parsed body and Retry-After."""

    def __init__(self, status: int, body: Dict[str, object], retry_after: Optional[float]):
        super().__init__(f"HTTP {status}: {body.get('error', body)}")
        self.status = status
        self.body = body
        self.retry_after = retry_after


class ServiceClient:
    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8321,
        timeout: float = 300.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- plumbing -----------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _request(self, method: str, path: str, payload=None) -> Dict[str, object]:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        # One reconnect attempt: the server may have closed an idle
        # keep-alive connection between two requests.
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                raw = response.read()
                break
            except (
                http.client.HTTPException,
                ConnectionError,
                BrokenPipeError,
            ):
                self.close()
                if attempt:
                    raise
        parsed = json.loads(raw.decode()) if raw else {}
        if response.status != 200:
            retry_after = response.headers.get("Retry-After")
            raise ServiceHTTPError(
                response.status,
                parsed if isinstance(parsed, dict) else {"error": parsed},
                float(retry_after) if retry_after else None,
            )
        return parsed

    # -- endpoints ----------------------------------------------------

    def health(self) -> Dict[str, object]:
        return self._request("GET", "/v1/health")

    def metrics(self) -> Dict[str, object]:
        return self._request("GET", "/v1/metrics")

    def compile(self, **params) -> Dict[str, object]:
        return self._request("POST", "/v1/compile", params)

    def simulate(self, **params) -> Dict[str, object]:
        return self._request("POST", "/v1/simulate", params)

    def sweep(self, **params) -> Dict[str, object]:
        return self._request("POST", "/v1/sweep", params)

    def fuzz(self, **params) -> Dict[str, object]:
        return self._request("POST", "/v1/fuzz", params)

    # -- conveniences -------------------------------------------------

    def wait_until_ready(self, deadline: float = 30.0) -> Dict[str, object]:
        """Poll ``/v1/health`` until the server answers (or raise)."""
        end = time.monotonic() + deadline
        last: Optional[Exception] = None
        while time.monotonic() < end:
            try:
                return self.health()
            except (OSError, socket.timeout, ServiceHTTPError) as exc:
                last = exc
                self.close()
                time.sleep(0.05)
        raise TimeoutError(f"service at {self.host}:{self.port} not ready: {last}")

    def request_with_retry(
        self, method_name: str, max_tries: int = 20, **params
    ) -> Dict[str, object]:
        """Call an endpoint, honouring 429 + Retry-After with retries."""
        for _ in range(max_tries):
            try:
                return getattr(self, method_name)(**params)
            except ServiceHTTPError as exc:
                if exc.status != 429:
                    raise
                time.sleep(exc.retry_after or 0.1)
        raise ServiceHTTPError(429, {"error": "retry budget exhausted"}, None)
