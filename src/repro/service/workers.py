"""CPU-bound job bodies, executed inside the process pool.

Each function here is a plain top-level callable (picklable for
``ProcessPoolExecutor``) taking the *normalized* parameter dict produced
by :mod:`repro.service.model` and returning a JSON-ready payload:

``{"result": <deterministic body>, "meta": <per-run observability>}``

``result`` is a pure function of the params — it is what gets cached
on disk under the job key and what coalesced requests share byte for
byte.  ``meta`` describes *this* run (did it compile, per-pass seconds,
cache counters) and is never cached: a cache hit's meta says so.

Workers own the cache interaction: they check the shared on-disk
:class:`~repro.cache.CompileCache` before computing and publish after,
so results survive server restarts and are shared between a service and
ordinary CLI sweeps pointed at the same ``$REPRO_CACHE_DIR``.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Tuple

from ..cache.compile_cache import CompileCache

__all__ = ["run_job"]


def _cache_fetch(key: str, cache_dir: Optional[str]) -> Tuple[CompileCache, Optional[dict]]:
    cache = CompileCache(root=cache_dir)
    value = cache.get(f"service-{key}")
    if not isinstance(value, dict):
        value = None
    return cache, value


def _cache_store(cache: CompileCache, key: str, result: dict) -> None:
    cache.put(f"service-{key}", result)


def _resolve_machine(params) -> "object":
    from ..machine.description import MachineDescription, paper_machine

    if params.get("machine") is not None:
        template = MachineDescription.from_json_dict(params["machine"])
    else:
        template = paper_machine(1)
    return template.at_issue_width(params["issue_rate"])


def _program_and_memory(params):
    """The (basic-block program, training memory) a request names.

    Benchmark requests build the named workload; inline programs come
    through serde and execute against a default memory image (the
    programs the fuzz generator and tests ship are self-contained).
    """
    from ..cfg.basic_block import to_basic_blocks

    if params["benchmark"] is not None:
        from ..workloads.suites import build_workload

        workload = build_workload(
            params["benchmark"], seed=params["seed"], scale=params["scale"]
        )
        return to_basic_blocks(workload.program), workload.make_memory
    from ..arch.memory import Memory
    from ..serde import program_from_json_dict

    program = to_basic_blocks(program_from_json_dict(params["program"]))
    return program, Memory


def _compile_core(params) -> Tuple[dict, dict]:
    """Compile one (program, policy, machine) cell.

    Returns ``(result, meta)``; the meta carries the pass-manager's
    per-pass seconds so the service can expose a per-request pass table.
    """
    from ..deps.reduction import GENERAL, RESTRICTED, SENTINEL, SENTINEL_STORE
    from ..interp.interpreter import run_program
    from ..sched.compiler import prepare_compilation, schedule_prepared
    from ..serde import (
        profile_from_json_dict,
        schedule_digest,
        schedule_to_json_dict,
    )

    policies = {
        "restricted": RESTRICTED,
        "general": GENERAL,
        "sentinel": SENTINEL,
        "sentinel_store": SENTINEL_STORE,
    }
    policy = policies[params["policy"]]
    machine = _resolve_machine(params)
    program, make_memory = _program_and_memory(params)

    if params.get("profile") is not None:
        profile = profile_from_json_dict(params["profile"])
    else:
        training = run_program(program, memory=make_memory(), max_steps=10_000_000)
        if not training.halted:
            raise ValueError("training run did not halt")
        profile = training.profile

    prepared = prepare_compilation(
        program,
        profile,
        policy,
        unroll_factor=params["unroll"],
        recovery=params["recovery"],
    )
    comp = schedule_prepared(prepared, machine, policy=policy)
    result = {
        "benchmark": params["benchmark"],
        "policy": params["policy"],
        "issue_rate": params["issue_rate"],
        "digest": schedule_digest(comp.scheduled),
        "stats": dict(vars(comp.stats)),
        "schedule": schedule_to_json_dict(comp.scheduled),
    }
    meta = {"pass_seconds": prepared.pass_seconds()}
    return result, meta


def _registers_digest(registers) -> str:
    text = ";".join(
        f"{reg.name}={value!r}" for reg, value in sorted(
            registers.items(), key=lambda kv: kv[0].name
        )
    )
    return hashlib.sha256(text.encode()).hexdigest()


def _simulate_core(params) -> Tuple[dict, dict]:
    """Compile, then execute the schedule cycle-accurately."""
    from ..arch.fastproc import FastProcessor
    from ..serde import schedule_from_json_dict

    compile_result, meta = _compile_core(params)
    scheduled = schedule_from_json_dict(compile_result["schedule"])
    machine = _resolve_machine(params)
    _, make_memory = _program_and_memory(params)
    out = FastProcessor(
        scheduled,
        machine,
        memory=make_memory(),
        on_exception=params["on_exception"],
        max_cycles=params["max_cycles"],
    ).run()
    result = {
        "benchmark": params["benchmark"],
        "policy": params["policy"],
        "issue_rate": params["issue_rate"],
        "schedule_digest": compile_result["digest"],
        "cycles": out.cycles,
        "dynamic_instructions": out.dynamic_instructions,
        "halted": out.halted,
        "aborted": out.aborted,
        "exceptions": len(out.exceptions),
        "stall_cycles": out.stall_cycles,
        "recoveries": out.recoveries,
        "registers_digest": _registers_digest(out.registers),
    }
    return result, meta


def _sweep_core(params) -> Tuple[dict, dict]:
    """A full evaluation sweep, serialized through repro.serde."""
    from ..eval.harness import run_sweep
    from ..serde.sweep import _config_from_json_dict, sweep_result_to_json_dict
    import dataclasses

    config = _config_from_json_dict(dict(params))
    # Inside a pool worker: one process, shared on-disk cache.
    config = dataclasses.replace(config, jobs=1, compile_cache=True)
    sweep = run_sweep(config)
    meta = {
        "pass_seconds": sweep.pass_totals(),
        "cache": dict(sweep.cache_counters),
        "sched": dict(sweep.sched_counters),
    }
    return sweep_result_to_json_dict(sweep), meta


def _fuzz_core(params) -> Tuple[dict, dict]:
    """A bounded differential fuzz campaign."""
    from ..fuzz.campaign import CampaignConfig, run_campaign

    config = CampaignConfig(
        seeds=params["seeds"],
        base_seed=params["base_seed"],
        model=params["model"],
        jobs=1,
        minimize=False,
    )
    campaign = run_campaign(config)
    result = {
        "seeds": campaign.seeds_run,
        "base_seed": params["base_seed"],
        "cells_checked": campaign.cells_checked,
        "ok": campaign.ok,
        "planned_traps": campaign.planned_traps,
        "benign_seeds": campaign.benign_seeds,
        "failing_seeds": [finding.seed for finding in campaign.findings],
        "failures_by_category": dict(campaign.failures_by_category),
    }
    return result, {}


_CORES = {
    "compile": _compile_core,
    "simulate": _simulate_core,
    "sweep": _sweep_core,
    "fuzz": _fuzz_core,
}


def run_job(
    endpoint: str,
    params: Dict[str, object],
    key: str,
    cache_dir: Optional[str] = None,
) -> dict:
    """Execute one job, via the shared on-disk cache when possible.

    ``key`` is the job's content address from
    :func:`repro.service.model.job_key` — the same string the server's
    single-flight map coalesces on, so the in-memory and on-disk layers
    agree about job identity by construction.

    The wall-clock nondeterminism (timings in sweep results, pass
    seconds) lives either in ``meta`` or in fields whose cached-first-run
    values are acceptable; the deterministic payload under ``result`` is
    what the coalescing contract promises to be byte-identical.
    """
    cache, cached = _cache_fetch(key, cache_dir)
    if cached is not None:
        return {
            "result": cached,
            "meta": {
                "cache_hit": True,
                "compiled": False,
                "cache": cache.counters(),
            },
        }
    result, meta = _CORES[endpoint](params)
    _cache_store(cache, key, result)
    meta.update(
        {
            "cache_hit": False,
            "compiled": endpoint in ("compile", "simulate"),
            "cache": cache.counters(),
        }
    )
    return {"result": result, "meta": meta}
