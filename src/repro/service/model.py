"""Request normalization and the content-addressed job model.

Every POST body is validated against the endpoint's field table —
unknown fields are a 400, exactly as :mod:`repro.serde` and the machine
JSON reject unknown keys — and normalized to a canonical parameter dict
(defaults applied, types coerced).  The normalized dict is the *entire*
input of the job, so its canonical JSON text, digested with the compile
cache's machinery (:func:`repro.cache.digest_parts` under
:data:`repro.cache.CACHE_VERSION_SALT`), names the job content-address-
style.  Two requests with the same key compute the same thing: the
server coalesces them onto one in-flight job and the on-disk cache
serves either from the other's result.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..cache.compile_cache import CACHE_VERSION_SALT, digest_parts
from ..workloads.suites import ALL_NAMES

__all__ = ["ENDPOINTS", "Job", "ServiceError", "job_key", "normalize_request"]

#: The four job-running endpoints (``/v1/<name>``).
ENDPOINTS = ("compile", "simulate", "sweep", "fuzz")

#: Policies a request may name (the four standard models).
POLICY_NAMES = ("restricted", "general", "sentinel", "sentinel_store")

_EXCEPTION_MODES = ("abort", "record", "recover")


class ServiceError(Exception):
    """A request-level failure carrying its HTTP status.

    ``retry_after`` is set only for 429 responses and becomes the
    ``Retry-After`` header.
    """

    def __init__(self, status: int, message: str, retry_after: Optional[int] = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.retry_after = retry_after


@dataclass(frozen=True)
class Job:
    """One unit of CPU-bound work: endpoint + normalized params + key."""

    endpoint: str
    params: "Dict[str, object]"
    key: str


def job_key(endpoint: str, params: Dict[str, object]) -> str:
    """Content address of a normalized request.

    The canonical JSON of the normalized params covers every input that
    can influence the result; the cache version salt ties the key to the
    pipeline generation exactly like on-disk compile entries.
    """
    return digest_parts(
        CACHE_VERSION_SALT,
        f"service/{endpoint}",
        json.dumps(params, sort_keys=True, separators=(",", ":")),
    )


def _require_dict(data) -> Dict[str, object]:
    if not isinstance(data, dict):
        raise ServiceError(400, "request body must be a JSON object")
    return data


def _reject_unknown(data: Dict[str, object], allowed: Tuple[str, ...]) -> None:
    unknown = set(data) - set(allowed)
    if unknown:
        raise ServiceError(400, f"unknown request fields: {sorted(unknown)}")


def _int_field(data, name: str, default: int, lo: int, hi: int) -> int:
    value = data.get(name, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ServiceError(400, f"{name!r} must be an integer")
    if not lo <= value <= hi:
        raise ServiceError(400, f"{name!r} must be in [{lo}, {hi}]")
    return value


def _bool_field(data, name: str, default: bool) -> bool:
    value = data.get(name, default)
    if not isinstance(value, bool):
        raise ServiceError(400, f"{name!r} must be a boolean")
    return value


def _policy_field(data, name: str = "policy", default: str = "sentinel") -> str:
    value = data.get(name, default)
    if value not in POLICY_NAMES:
        raise ServiceError(
            400, f"{name!r} must be one of {list(POLICY_NAMES)}, got {value!r}"
        )
    return value


def _benchmark_field(data) -> Optional[str]:
    value = data.get("benchmark")
    if value is None:
        return None
    if value not in ALL_NAMES:
        raise ServiceError(400, f"unknown benchmark {value!r}")
    return value


def _machine_field(data) -> Optional[Dict[str, object]]:
    """Validate an inline machine description (full JSON form)."""
    value = data.get("machine")
    if value is None:
        return None
    from ..machine.description import MachineDescription

    try:
        machine = MachineDescription.from_json_dict(value)
    except (ValueError, TypeError, KeyError) as exc:
        raise ServiceError(400, f"bad machine description: {exc}") from exc
    # Normalize to the canonical JSON form so equivalent spellings of a
    # machine share one job key.
    return machine.to_json_dict()


def _program_fields(data) -> Tuple[Optional[Dict], Optional[Dict]]:
    """Validate inline serde ``program`` (+ optional ``profile``)."""
    program = data.get("program")
    profile = data.get("profile")
    if program is None:
        if profile is not None:
            raise ServiceError(400, "'profile' requires 'program'")
        return None, None
    from ..serde import SerdeError, profile_from_json_dict, program_from_json_dict

    try:
        parsed = program_from_json_dict(program)
        parsed.validate()
        if profile is not None:
            profile_from_json_dict(profile)
    except (SerdeError, ValueError) as exc:
        raise ServiceError(400, f"bad program payload: {exc}") from exc
    return program, profile


_COMPILE_FIELDS = (
    "benchmark", "program", "profile", "policy", "issue_rate", "unroll",
    "recovery", "seed", "scale", "machine",
)


def _normalize_compile(data: Dict[str, object]) -> Dict[str, object]:
    _reject_unknown(data, _COMPILE_FIELDS)
    benchmark = _benchmark_field(data)
    program, profile = _program_fields(data)
    if (benchmark is None) == (program is None):
        raise ServiceError(400, "exactly one of 'benchmark' or 'program' required")
    scale = data.get("scale", 1.0)
    if isinstance(scale, bool) or not isinstance(scale, (int, float)):
        raise ServiceError(400, "'scale' must be a number")
    return {
        "benchmark": benchmark,
        "program": program,
        "profile": profile,
        "policy": _policy_field(data),
        "issue_rate": _int_field(data, "issue_rate", 4, 1, 64),
        "unroll": _int_field(data, "unroll", 2, 1, 16),
        "recovery": _bool_field(data, "recovery", False),
        "seed": _int_field(data, "seed", 0, 0, 2**31),
        "scale": float(scale),
        "machine": _machine_field(data),
    }


_SIMULATE_FIELDS = _COMPILE_FIELDS + ("on_exception", "max_cycles")


def _normalize_simulate(data: Dict[str, object]) -> Dict[str, object]:
    _reject_unknown(data, _SIMULATE_FIELDS)
    on_exception = data.get("on_exception", "abort")
    if on_exception not in _EXCEPTION_MODES:
        raise ServiceError(
            400,
            f"'on_exception' must be one of {list(_EXCEPTION_MODES)}",
        )
    params = _normalize_compile(
        {k: v for k, v in data.items() if k in _COMPILE_FIELDS}
    )
    params["on_exception"] = on_exception
    params["max_cycles"] = _int_field(data, "max_cycles", 5_000_000, 1, 100_000_000)
    return params


_SWEEP_FIELDS = (
    "benchmarks", "issue_rates", "policies", "unroll_factor", "seed",
    "scale", "store_buffer_size", "recovery", "max_steps", "simulate",
    "machine",
)


def _normalize_sweep(data: Dict[str, object]) -> Dict[str, object]:
    _reject_unknown(data, _SWEEP_FIELDS)
    from ..serde import SerdeError
    from ..serde.sweep import _config_from_json_dict, _config_to_json_dict

    benchmarks = data.get("benchmarks")
    if not benchmarks or not isinstance(benchmarks, list):
        raise ServiceError(400, "'benchmarks' must be a non-empty list")
    for name in benchmarks:
        if name not in ALL_NAMES:
            raise ServiceError(400, f"unknown benchmark {name!r}")
    try:
        config = _config_from_json_dict(dict(data))
    except SerdeError as exc:
        raise ServiceError(400, f"bad sweep config: {exc}") from exc
    # Round through the serde form: canonical field order and defaults
    # applied, so equivalent configs share one job key.
    return _config_to_json_dict(config)


_FUZZ_FIELDS = ("seeds", "base_seed", "model")


def _normalize_fuzz(data: Dict[str, object]) -> Dict[str, object]:
    _reject_unknown(data, _FUZZ_FIELDS)
    model = data.get("model")
    if model is not None and model not in POLICY_NAMES:
        raise ServiceError(400, f"unknown model {model!r}")
    return {
        "seeds": _int_field(data, "seeds", 25, 1, 2000),
        "base_seed": _int_field(data, "base_seed", 0, 0, 2**31),
        "model": model,
    }


_NORMALIZERS = {
    "compile": _normalize_compile,
    "simulate": _normalize_simulate,
    "sweep": _normalize_sweep,
    "fuzz": _normalize_fuzz,
}


def normalize_request(endpoint: str, data) -> Job:
    """Validate a request body and mint its content-addressed job.

    Raises :class:`ServiceError` (status 400) on any shape problem; the
    message names the offending field, never echoes the whole body.
    """
    if endpoint not in _NORMALIZERS:
        raise ServiceError(404, f"unknown endpoint {endpoint!r}")
    params = _NORMALIZERS[endpoint](_require_dict(data))
    return Job(endpoint=endpoint, params=params, key=job_key(endpoint, params))
