"""Reproduction of *Sentinel Scheduling for VLIW and Superscalar
Processors* (Mahlke, Chen, Hwu, Rau, Schlansker — ASPLOS 1992).

Subpackages
-----------
``repro.isa``
    RISC instruction set (MIPS-R2000-like) with the paper's architectural
    extensions: speculative modifier, ``check_exception``,
    ``confirm_store``, tag-preserving spills.
``repro.cfg``
    Basic blocks, CFG, liveness, profiling, superblock formation, loop
    unrolling.
``repro.interp``
    Sequential reference interpreter with precise exceptions (the golden
    semantics every schedule is checked against).
``repro.deps``
    Dependence graphs and the Appendix's per-model reduction.
``repro.machine``
    Machine descriptions (issue rate, Table 3 latencies, store buffer).
``repro.sched``
    List scheduler, renaming, the ``compile_program`` /
    ``prepare_compilation`` / ``schedule_prepared`` entry points, and
    the four scheduling models (restricted/general percolation, sentinel,
    sentinel + speculative stores).
``repro.pipeline``
    The pass-manager compilation pipeline those entry points run:
    declarative passes over a shared context, per-pass timings, and the
    IR verifier interleaved at pass boundaries (``verify_ir`` /
    ``REPRO_VERIFY_IR=1``).
``repro.core``
    The paper's contribution: Table 1 tag semantics, sentinel insertion,
    static sentinel analysis, uninitialized-tag clearing, recovery.
``repro.arch``
    Hardware simulation: tagged register file, PC history queue, Table 2
    store buffer, cycle-level multi-issue processor, timing model.
``repro.workloads``
    The 17 benchmark stand-ins and the synthetic program generator.
``repro.eval``
    Figure 4/5 sweeps, Table 1/2/3 regeneration, headline aggregates.

Quickstart
----------
>>> from repro import quick_compare
>>> results = quick_compare("cmp", issue_rate=8)   # doctest: +SKIP
"""

from typing import Dict

__version__ = "1.0.0"

__all__ = ["quick_compare", "__version__"]


def quick_compare(
    benchmark: str,
    issue_rate: int = 8,
    unroll_factor: int = 3,
    seed: int = 0,
) -> Dict[str, float]:
    """Compile one benchmark under all four models and return speedups.

    Speedups are measured by the cycle-level processor against the paper's
    base machine (issue 1, restricted percolation).  Convenience entry
    point used by the quickstart example.
    """
    from .arch.processor import run_scheduled
    from .cfg.basic_block import to_basic_blocks
    from .deps.reduction import GENERAL, RESTRICTED, SENTINEL, SENTINEL_STORE
    from .interp.interpreter import run_program
    from .machine.description import paper_machine
    from .sched.compiler import compile_program
    from .workloads.suites import build_workload

    workload = build_workload(benchmark, seed=seed)
    basic = to_basic_blocks(workload.program)
    training = run_program(basic, memory=workload.make_memory())

    base_machine = paper_machine(1)
    base = compile_program(
        basic, training.profile, base_machine, RESTRICTED, unroll_factor=unroll_factor
    )
    base_cycles = run_scheduled(
        base.scheduled, base_machine, memory=workload.make_memory()
    ).cycles

    machine = paper_machine(issue_rate)
    speedups: Dict[str, float] = {}
    for policy in (RESTRICTED, GENERAL, SENTINEL, SENTINEL_STORE):
        comp = compile_program(
            basic, training.profile, machine, policy, unroll_factor=unroll_factor
        )
        cycles = run_scheduled(
            comp.scheduled, machine, memory=workload.make_memory()
        ).cycles
        speedups[policy.name] = base_cycles / cycles
    return speedups
