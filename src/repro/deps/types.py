"""Dependence arc types and the dependence graph container.

The graph is built over one superblock.  Arc kinds:

* ``FLOW`` / ``ANTI`` / ``OUTPUT`` — register data dependences,
* ``MEM`` — memory ordering (store/load conflicts without proven
  independence),
* ``CONTROL`` — branch → later instruction.  These are the arcs dependence
  graph reduction removes "to enable speculative code motion allowed by the
  scheduling model" (Section 3.3),
* ``GUARD`` — earlier instruction → branch/terminator.  These keep
  side-effecting, live-out-writing and trap-capable instructions from
  sinking below an exit they originally preceded; no model removes them,
* ``SENT`` — arcs created during scheduling to pin a sentinel
  (``check_exception`` / ``confirm_store``) into its home block, per the
  Appendix algorithm.

Arc latency is the minimum issue-cycle separation: ``cycle(dst) >=
cycle(src) + latency``.  Latency 0 allows same-cycle issue (all operations
in one VLIW word execute together, so e.g. a store may share a cycle with a
branch it must precede).
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, Iterator, List, NamedTuple, Optional, Set, Tuple

from ..isa.instruction import Instruction
from ..isa.program import Block


class ArcKind(enum.Enum):
    # Identity hash: members are singletons and (node, kind) tuples key
    # the per-node arc dicts in every graph operation; the default
    # ``Enum.__hash__`` re-hashes the name string each time.  Hash values
    # are never persisted.
    __hash__ = object.__hash__

    FLOW = "flow"
    ANTI = "anti"
    OUTPUT = "output"
    MEM = "mem"
    CONTROL = "control"
    GUARD = "guard"
    SENT = "sent"


_ALL_KINDS: Tuple[ArcKind, ...] = tuple(ArcKind)


class Arc(NamedTuple):
    # A NamedTuple rather than a frozen dataclass: arcs are created in the
    # builder's innermost loops and tuple construction is measurably cheaper
    # than dataclass __init__ with frozen-field __setattr__ checks.
    src: int  # node index
    dst: int
    kind: ArcKind
    latency: int

    def __repr__(self) -> str:
        return f"{self.src}-{self.kind.value}/{self.latency}->{self.dst}"


class DepGraph:
    """Dependence graph over the instructions of one superblock.

    Nodes are integer indices.  Indices ``0..n-1`` correspond to the
    block's original instruction order; sentinel instructions appended
    during scheduling get indices ``>= n``.
    """

    def __init__(self, block: Block) -> None:
        self.block = block
        self.nodes: List[Instruction] = list(block.instrs)
        self.original_count = len(self.nodes)
        # Arc storage is a per-node insertion-ordered index: node ->
        # {(other, kind): Arc}.  One dict per direction gives O(1)
        # find_arc/has_arc/remove_arc while preserving the insertion order
        # the list-based representation exposed through succs()/preds().
        # build_dependence_graph probes for existing arcs inside doubly
        # nested loops over control/guard/anti arcs, so the linear-scan
        # find_arc made construction effectively cubic on unrolled
        # superblocks.
        self._succs: List[Dict[Tuple[int, ArcKind], Arc]] = [{} for _ in self.nodes]
        self._preds: List[Dict[Tuple[int, ArcKind], Arc]] = [{} for _ in self.nodes]
        #: Instructions needing an explicit sentinel if speculated
        #: (Section 3.1 "unprotected instruction"), set by reduction.
        self.unprotected: Set[int] = set()
        #: Nodes the scheduling model allows to be speculative.
        self.allowed_spec: Set[int] = set()
        #: node -> its shared-sentinel node (first home-block use), if any.
        self.shared_sentinel: Dict[int, int] = {}
        #: Memoized critical_heights(); invalidated by any arc mutation.
        self._heights: Optional[List[int]] = None

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    def instruction(self, node: int) -> Instruction:
        return self.nodes[node]

    def add_node(self, instr: Instruction) -> int:
        self.nodes.append(instr)
        self._succs.append({})
        self._preds.append({})
        self._heights = None
        return len(self.nodes) - 1

    def add_arc(self, src: int, dst: int, kind: ArcKind, latency: int) -> Arc:
        if src == dst:
            raise ValueError(f"self arc on node {src}")
        key = (dst, kind)
        succs = self._succs[src]
        if key in succs:
            raise ValueError(f"duplicate arc {succs[key]!r}")
        arc = Arc(src, dst, kind, latency)
        succs[key] = arc
        self._preds[dst][(src, kind)] = arc
        self._heights = None
        return arc

    def remove_arc(self, arc: Arc) -> None:
        del self._succs[arc.src][(arc.dst, arc.kind)]
        del self._preds[arc.dst][(arc.src, arc.kind)]
        self._heights = None

    def succs(self, node: int) -> List[Arc]:
        return list(self._succs[node].values())

    def preds(self, node: int) -> List[Arc]:
        return list(self._preds[node].values())

    def iter_succs(self, node: int) -> Iterable[Arc]:
        """Live view of ``node``'s outgoing arcs; do not mutate while iterating."""
        return self._succs[node].values()

    def iter_preds(self, node: int) -> Iterable[Arc]:
        """Live view of ``node``'s incoming arcs; do not mutate while iterating."""
        return self._preds[node].values()

    def pred_count(self, node: int) -> int:
        return len(self._preds[node])

    def succ_count(self, node: int) -> int:
        return len(self._succs[node])

    def arcs(self) -> Iterator[Arc]:
        for arcs in self._succs:
            yield from arcs.values()

    def control_preds(self, node: int) -> List[Arc]:
        return [a for a in self._preds[node].values() if a.kind is ArcKind.CONTROL]

    def find_arc(self, src: int, dst: int, kind: Optional[ArcKind] = None) -> Optional[Arc]:
        """The arc ``src -> dst`` of ``kind``, or None.

        With ``kind=None``, returns an arbitrary arc between the pair (every
        caller only tests existence); prefer :meth:`has_arc` for that.
        """
        succs = self._succs[src]
        if kind is not None:
            return succs.get((dst, kind))
        for k in _ALL_KINDS:
            arc = succs.get((dst, k))
            if arc is not None:
                return arc
        return None

    def has_arc(self, src: int, dst: int, kind: Optional[ArcKind] = None) -> bool:
        succs = self._succs[src]
        if kind is not None:
            return (dst, kind) in succs
        return any((dst, k) in succs for k in _ALL_KINDS)

    def copy(self) -> "DepGraph":
        """Independent copy sharing instructions and (immutable) arcs.

        Scheduling mutates a graph in place — sentinel nodes, SENT/ANTI
        arcs — so a pristine built-and-reduced graph is copied once per
        schedule instead of being rebuilt from the block.
        """
        other = object.__new__(DepGraph)
        other.block = self.block
        other.nodes = list(self.nodes)
        other.original_count = self.original_count
        other._succs = [dict(arcs) for arcs in self._succs]
        other._preds = [dict(arcs) for arcs in self._preds]
        other.unprotected = set(self.unprotected)
        other.allowed_spec = set(self.allowed_spec)
        other.shared_sentinel = dict(self.shared_sentinel)
        other._heights = self._heights
        return other

    # ------------------------------------------------------------------

    def critical_heights(self) -> List[int]:
        """Longest-path height of each node (priority for list scheduling).

        Height of a node = max over outgoing arcs of latency + height(dst);
        leaves have height equal to their own latency contribution of 1.
        Computed over the current arc set in reverse topological (original
        position) order — arcs always point from lower to higher original
        position, so a reverse index sweep suffices.

        The result is memoized until the next arc mutation (a pristine
        reduced graph and every schedule-time copy of it share one
        computation); callers must treat it as read-only.
        """
        if self._heights is not None:
            return self._heights
        n = len(self.nodes)
        height = [1] * n
        for node in range(n - 1, -1, -1):
            best = 1
            for arc in self._succs[node].values():
                candidate = arc.latency + height[arc.dst]
                if candidate > best:
                    best = candidate
            height[node] = best
        self._heights = height
        return height
