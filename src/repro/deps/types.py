"""Dependence arc types and the dependence graph container.

The graph is built over one superblock.  Arc kinds:

* ``FLOW`` / ``ANTI`` / ``OUTPUT`` — register data dependences,
* ``MEM`` — memory ordering (store/load conflicts without proven
  independence),
* ``CONTROL`` — branch → later instruction.  These are the arcs dependence
  graph reduction removes "to enable speculative code motion allowed by the
  scheduling model" (Section 3.3),
* ``GUARD`` — earlier instruction → branch/terminator.  These keep
  side-effecting, live-out-writing and trap-capable instructions from
  sinking below an exit they originally preceded; no model removes them,
* ``SENT`` — arcs created during scheduling to pin a sentinel
  (``check_exception`` / ``confirm_store``) into its home block, per the
  Appendix algorithm.

Arc latency is the minimum issue-cycle separation: ``cycle(dst) >=
cycle(src) + latency``.  Latency 0 allows same-cycle issue (all operations
in one VLIW word execute together, so e.g. a store may share a cycle with a
branch it must precede).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set

from ..isa.instruction import Instruction
from ..isa.program import Block


class ArcKind(enum.Enum):
    FLOW = "flow"
    ANTI = "anti"
    OUTPUT = "output"
    MEM = "mem"
    CONTROL = "control"
    GUARD = "guard"
    SENT = "sent"


@dataclass(frozen=True)
class Arc:
    src: int  # node index
    dst: int
    kind: ArcKind
    latency: int

    def __repr__(self) -> str:
        return f"{self.src}-{self.kind.value}/{self.latency}->{self.dst}"


class DepGraph:
    """Dependence graph over the instructions of one superblock.

    Nodes are integer indices.  Indices ``0..n-1`` correspond to the
    block's original instruction order; sentinel instructions appended
    during scheduling get indices ``>= n``.
    """

    def __init__(self, block: Block) -> None:
        self.block = block
        self.nodes: List[Instruction] = list(block.instrs)
        self.original_count = len(self.nodes)
        self._succs: List[List[Arc]] = [[] for _ in self.nodes]
        self._preds: List[List[Arc]] = [[] for _ in self.nodes]
        #: Instructions needing an explicit sentinel if speculated
        #: (Section 3.1 "unprotected instruction"), set by reduction.
        self.unprotected: Set[int] = set()
        #: Nodes the scheduling model allows to be speculative.
        self.allowed_spec: Set[int] = set()
        #: node -> its shared-sentinel node (first home-block use), if any.
        self.shared_sentinel: Dict[int, int] = {}

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    def instruction(self, node: int) -> Instruction:
        return self.nodes[node]

    def add_node(self, instr: Instruction) -> int:
        self.nodes.append(instr)
        self._succs.append([])
        self._preds.append([])
        return len(self.nodes) - 1

    def add_arc(self, src: int, dst: int, kind: ArcKind, latency: int) -> Arc:
        if src == dst:
            raise ValueError(f"self arc on node {src}")
        arc = Arc(src, dst, kind, latency)
        self._succs[src].append(arc)
        self._preds[dst].append(arc)
        return arc

    def remove_arc(self, arc: Arc) -> None:
        self._succs[arc.src].remove(arc)
        self._preds[arc.dst].remove(arc)

    def succs(self, node: int) -> List[Arc]:
        return list(self._succs[node])

    def preds(self, node: int) -> List[Arc]:
        return list(self._preds[node])

    def arcs(self) -> Iterator[Arc]:
        for arcs in self._succs:
            yield from arcs

    def control_preds(self, node: int) -> List[Arc]:
        return [a for a in self._preds[node] if a.kind is ArcKind.CONTROL]

    def find_arc(self, src: int, dst: int, kind: Optional[ArcKind] = None) -> Optional[Arc]:
        for arc in self._succs[src]:
            if arc.dst == dst and (kind is None or arc.kind is kind):
                return arc
        return None

    def copy(self) -> "DepGraph":
        """Independent copy sharing instructions and (immutable) arcs.

        Scheduling mutates a graph in place — sentinel nodes, SENT/ANTI
        arcs — so a pristine built-and-reduced graph is copied once per
        schedule instead of being rebuilt from the block.
        """
        other = object.__new__(DepGraph)
        other.block = self.block
        other.nodes = list(self.nodes)
        other.original_count = self.original_count
        other._succs = [list(arcs) for arcs in self._succs]
        other._preds = [list(arcs) for arcs in self._preds]
        other.unprotected = set(self.unprotected)
        other.allowed_spec = set(self.allowed_spec)
        other.shared_sentinel = dict(self.shared_sentinel)
        return other

    # ------------------------------------------------------------------

    def critical_heights(self) -> List[int]:
        """Longest-path height of each node (priority for list scheduling).

        Height of a node = max over outgoing arcs of latency + height(dst);
        leaves have height equal to their own latency contribution of 1.
        Computed over the current arc set in reverse topological (original
        position) order — arcs always point from lower to higher original
        position, so a reverse index sweep suffices.
        """
        n = len(self.nodes)
        height = [1] * n
        for node in range(n - 1, -1, -1):
            best = 1
            for arc in self._succs[node]:
                candidate = arc.latency + height[arc.dst]
                if candidate > best:
                    best = candidate
            height[node] = best
        return height
