"""Dependence graph construction over one superblock.

Section 3.3: "The initial dependence graph contains dependence arcs to
represent all data and control dependences between instructions in the
superblock."  We build:

* register flow/anti/output arcs with Table 3 latencies,
* memory ordering arcs with a simple base+offset disambiguator (two
  accesses through the same base register *version* and different constant
  offsets are independent; everything else conflicts),
* a CONTROL arc from every conditional branch to every later instruction
  (latency 1 — an operation issued in the same VLIW word as a branch
  executes even when the branch is taken, i.e. it *is* speculative),
* GUARD arcs that pin instructions above exits they must not sink below:
  stores, irreversible instructions, trap-capable instructions (precise
  exceptions on the taken path), sentinels, and producers of registers
  live on the taken path; plus an arc from everything to the block's final
  terminator so the whole block issues before control leaves it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..cfg.liveness import Liveness
from ..isa.instruction import Instruction
from ..isa.opcodes import LatClass, Opcode
from ..isa.program import Block
from ..isa.registers import Register
from ..machine.description import BASE_MACHINE
from .types import ArcKind, DepGraph

#: Latencies for ordering arcs.
ANTI_LATENCY = 0  # same-cycle OK: reads happen before writes within a word
OUTPUT_LATENCY = 1  # two writes to one register must be in distinct words
MEM_STORE_LOAD_LATENCY = 1  # store buffer forwards one cycle later
MEM_LOAD_STORE_LATENCY = 0
MEM_STORE_STORE_LATENCY = 1
CONTROL_LATENCY = 1  # non-speculative code strictly follows the branch
GUARD_LATENCY = 0  # may share the exit's cycle (the word still executes)

#: Pin trap-capable instructions above later exits so their exception still
#: fires on the taken path.  Superblock scheduling is upward-motion-only, so
#: this is on by default; the ablation benches flip it to quantify the cost.
_TRAP_SINK_GUARDS = True


class SymbolicAddresses:
    """Symbolic base+offset value numbering for memory disambiguation.

    Each register's value is abstracted as ``(base_id, offset)``: moves copy
    the pair, add/sub of an immediate shifts the offset, everything else
    produces a fresh base.  ``base_id`` 0 is the absolute base (``mov r, c``
    and the hardwired zero register), so constant-addressed accesses compare
    across different registers.  Two accesses with the same base id touch
    the same word iff their total offsets are equal — this survives the
    pointer bumps between classically-unrolled loop copies, where a naive
    per-definition versioning scheme gives up.
    """

    def __init__(self) -> None:
        self._next = 0
        self._values: Dict[Register, Tuple[int, int]] = {}

    def _fresh(self) -> Tuple[int, int]:
        self._next += 1
        return (self._next, 0)

    def value_of(self, reg: Register) -> Tuple[int, int]:
        if reg.is_zero:
            return (0, 0)
        if reg not in self._values:
            self._values[reg] = self._fresh()
        return self._values[reg]

    def on_instruction(self, instr: Instruction) -> None:
        """Update abstract values for the instruction's definitions."""
        dest = instr.dest
        if dest is None or dest.is_zero or instr.op is Opcode.CLRTAG:
            return
        op = instr.op
        srcs = instr.srcs
        if op is Opcode.MOV and len(srcs) == 1:
            src = srcs[0]
            if isinstance(src, int):
                self._values[dest] = (0, src)
            elif isinstance(src, Register):
                self._values[dest] = self.value_of(src)
            else:
                self._values[dest] = self._fresh()
            return
        if op in (Opcode.ADD, Opcode.SUB) and len(srcs) == 2:
            a, b = srcs
            if isinstance(a, Register) and isinstance(b, int):
                base, offset = self.value_of(a)
                delta = b if op is Opcode.ADD else -b
                self._values[dest] = (base, offset + delta)
                return
            if op is Opcode.ADD and isinstance(a, int) and isinstance(b, Register):
                base, offset = self.value_of(b)
                self._values[dest] = (base, offset + a)
                return
        self._values[dest] = self._fresh()

    def address_of(self, instr: Instruction) -> Optional[Tuple[int, int]]:
        """Abstract address of a memory instruction, if computable."""
        base = instr.srcs[0]
        offset = instr.srcs[1]
        if isinstance(base, Register) and isinstance(offset, int):
            base_id, base_off = self.value_of(base)
            return (base_id, base_off + offset)
        return None


def _mem_conflict(
    expr_a: Optional[Tuple[int, int]],
    region_a: Optional[str],
    expr_b: Optional[Tuple[int, int]],
    region_b: Optional[str],
) -> bool:
    """May two accesses touch the same word?

    Distinct memory-object regions (array identity, as a C front end would
    know it) never alias; same-base symbolic addresses alias iff their
    offsets match; everything else conservatively conflicts.
    """
    if region_a is not None and region_b is not None and region_a != region_b:
        return False
    if expr_a is None or expr_b is None:
        return True
    if expr_a[0] == expr_b[0]:
        return expr_a[1] == expr_b[1]
    return True


def build_dependence_graph(
    block: Block,
    liveness: Liveness,
    latencies: Optional[Dict[LatClass, int]] = None,
    irreversible_barriers: bool = False,
) -> DepGraph:
    """Build the full (unreduced) dependence graph for ``block``.

    ``latencies`` is a machine's latency table
    (:attr:`~repro.machine.description.MachineDescription.latencies`);
    ``None`` uses the base machine's — the paper's Table 3.  Callers on
    the compilation path always thread the table of the machine being
    scheduled for, so the graph's flow-arc latencies follow the machine,
    not a global constant.

    With ``irreversible_barriers`` (recovery mode, Section 3.7 restriction
    1), every irreversible instruction gets an arc to *all* subsequent
    instructions: "A speculative instruction cannot be moved beyond any
    irreversible instruction.  This is enforced by creating control
    dependence arcs from irreversible instructions to all subsequent
    instructions in the superblock."
    """
    if latencies is None:
        latencies = BASE_MACHINE.latencies
    graph = DepGraph(block)
    instrs = graph.nodes
    n = len(instrs)
    add_arc = graph.add_arc
    FLOW, ANTI, OUTPUT = ArcKind.FLOW, ArcKind.ANTI, ArcKind.OUTPUT
    MEM, CONTROL, GUARD = ArcKind.MEM, ArcKind.CONTROL, ArcKind.GUARD

    infos = [instr.info for instr in instrs]
    lats = [latencies[info.lat_class] for info in infos]

    last_def: Dict[Register, int] = {}
    uses_since_def: Dict[Register, List[int]] = {}
    symbolic = SymbolicAddresses()
    #: (node, is-store, address expression, region) for memory instructions.
    mem_ops: List[Tuple[int, bool, Optional[Tuple[int, int]], Optional[str]]] = []
    branch_nodes: List[int] = []
    last_irreversible: Optional[int] = None
    #: (src, dst) pairs already connected by any arc.  Emitting arcs through
    #: this local set (and the per-instruction kind sets below) replaces the
    #: graph-probing ``find_arc`` dedup of the original builder.
    linked = set()

    for idx, instr in enumerate(instrs):
        info = infos[idx]

        # --- register data dependences -------------------------------
        flow_done = set()  # producers already given a FLOW arc to idx
        for reg in instr.uses():
            if reg.is_zero:
                continue
            producer = last_def.get(reg)
            if producer is not None and producer not in flow_done:
                flow_done.add(producer)
                add_arc(producer, idx, FLOW, lats[producer])
                linked.add((producer, idx))
            uses_since_def.setdefault(reg, []).append(idx)
        anti_done = set()  # users already given an ANTI arc to idx
        output_done = set()
        for reg in instr.defs():
            if reg.is_zero:
                continue
            for user in uses_since_def.get(reg, ()):
                # The dedup is kind-aware: a (user, idx) FLOW or OUTPUT arc
                # does not suppress the ANTI arc (the seed builder's
                # kind-agnostic ``find_arc(user, idx)`` probe did, silently
                # dropping write-after-read constraints that happened to be
                # subsumed — see tests/deps/test_builder.py).
                if user != idx and user not in anti_done:
                    anti_done.add(user)
                    add_arc(user, idx, ANTI, ANTI_LATENCY)
                    linked.add((user, idx))
            producer = last_def.get(reg)
            if producer is not None and producer != idx and producer not in output_done:
                output_done.add(producer)
                add_arc(producer, idx, OUTPUT, OUTPUT_LATENCY)
                linked.add((producer, idx))
            last_def[reg] = idx
            uses_since_def[reg] = []

        # --- memory ordering -----------------------------------------
        if info.reads_mem or info.writes_mem:
            expr = symbolic.address_of(instr)
            region = instr.mem_region
            is_store = info.writes_mem
            for other, other_is_store, other_expr, other_region in mem_ops:
                if not is_store and not other_is_store:
                    continue  # load-load never conflicts
                if not _mem_conflict(expr, region, other_expr, other_region):
                    continue
                if other_is_store and not is_store:
                    latency = MEM_STORE_LOAD_LATENCY
                elif is_store and not other_is_store:
                    latency = MEM_LOAD_STORE_LATENCY
                else:
                    latency = MEM_STORE_STORE_LATENCY
                add_arc(other, idx, MEM, latency)
                linked.add((other, idx))
            mem_ops.append((idx, is_store, expr, region))
        symbolic.on_instruction(instr)

        # --- irreversible-event ordering (I/O and calls are observable) ---
        if irreversible_barriers and last_irreversible is not None:
            # Recovery restriction 1: nothing moves above an irreversible
            # instruction ("control dependence arcs from irreversible
            # instructions to all subsequent instructions").
            add_arc(last_irreversible, idx, GUARD, 1)
            linked.add((last_irreversible, idx))
        if info.is_irreversible:
            if irreversible_barriers:
                # Restriction 2 makes it a full block boundary: nothing
                # sinks below it either.
                for earlier in range(idx):
                    if (earlier, idx) not in linked:
                        add_arc(earlier, idx, GUARD, GUARD_LATENCY)
                        linked.add((earlier, idx))
            elif last_irreversible is not None:
                add_arc(last_irreversible, idx, GUARD, GUARD_LATENCY)
                linked.add((last_irreversible, idx))
            last_irreversible = idx

        # --- control dependences (branch -> later instruction) --------
        for branch_node in branch_nodes:
            add_arc(branch_node, idx, CONTROL, CONTROL_LATENCY)
            linked.add((branch_node, idx))
        if info.is_cond_branch:
            branch_nodes.append(idx)

    # --- guard arcs: earlier instruction -> exit it must not sink below
    terminator = n - 1 if n and infos[-1].is_control and not infos[-1].is_cond_branch else None
    if branch_nodes:
        # Per-node guard conditions hoisted out of the per-exit loop; only
        # the liveness term varies with the exit.
        always_guard = [
            infos[idx].writes_mem
            or infos[idx].is_irreversible
            or (infos[idx].can_trap and _TRAP_SINK_GUARDS)
            or instrs[idx].op in (Opcode.CHECK, Opcode.CONFIRM, Opcode.CLRTAG)
            for idx in range(n)
        ]
        dests = [instr.dest for instr in instrs]
    for exit_node in branch_nodes:
        branch_uid = instrs[exit_node].uid
        live_taken = liveness.live_when_taken(branch_uid)
        for idx in range(exit_node):
            needs_guard = always_guard[idx] or (
                dests[idx] is not None and dests[idx] in live_taken
            )
            if needs_guard and (idx, exit_node) not in linked:
                add_arc(idx, exit_node, GUARD, GUARD_LATENCY)
                linked.add((idx, exit_node))
    if terminator is not None:
        for idx in range(terminator):
            if (idx, terminator) not in linked:
                add_arc(idx, terminator, GUARD, GUARD_LATENCY)
                linked.add((idx, terminator))

    return graph
