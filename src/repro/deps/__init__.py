"""Dependence graphs: construction and per-model reduction."""

from .builder import build_dependence_graph
from .reduction import (
    GENERAL,
    POLICIES,
    RESTRICTED,
    SENTINEL,
    SENTINEL_STORE,
    COLWELL,
    SpeculationPolicy,
    boosting_policy,
    first_home_use,
    reduce_dependence_graph,
)
from .types import Arc, ArcKind, DepGraph

__all__ = [
    "build_dependence_graph",
    "GENERAL",
    "POLICIES",
    "RESTRICTED",
    "SENTINEL",
    "SENTINEL_STORE",
    "COLWELL",
    "SpeculationPolicy",
    "boosting_policy",
    "first_home_use",
    "reduce_dependence_graph",
    "Arc",
    "ArcKind",
    "DepGraph",
]
