"""Dependence graph reduction — the Appendix algorithm of the paper.

Reduction does two things, walking the superblock in sequential order:

1. **Unprotected marking** (Section 3.1).  A potential exception-causing
   instruction whose result has a use in its home block shares that use as
   its sentinel; the duty propagates recursively through home-block uses.
   An instruction left with no home-block use is *unprotected*: if it is
   speculated, the scheduler must insert an explicit sentinel for it.

2. **Control-dependence removal** (Section 3.3).  "A control dependence arc
   from a branch instruction BR to another instruction I is removed if the
   location written to by I is not used before being redefined when BR is
   taken" — i.e. dest(I) is not live-in at BR's taken target — and the
   scheduling model allows I to be speculative:

   * *restricted percolation* forbids speculating any potential
     trap-causing instruction (Section 2.2),
   * *general percolation* and *sentinel scheduling* allow all but stores
     (Sections 2.4, 3.3),
   * *sentinel scheduling with speculative stores* also releases stores,
     removing their control dependences from **all** preceding branches and
     marking every store unprotected (Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cfg.liveness import Liveness
from ..isa.instruction import Instruction
from ..isa.opcodes import Opcode
from .types import ArcKind, DepGraph


@dataclass(frozen=True)
class SpeculationPolicy:
    """What a scheduling model lets the scheduler hoist above branches."""

    name: str
    #: May potential trap-causing (non-store) instructions be speculated?
    trap_spec: bool
    #: May stores be speculated (requires probationary store buffer)?
    store_spec: bool
    #: Do speculated unprotected instructions get explicit sentinels?
    sentinels: bool
    #: Instruction boosting (Section 2.3): at most this many branches may be
    #: crossed ("To boost an instruction above N branches, N shadow register
    #: files and N shadow store buffers are required.  Therefore, the number
    #: of branches an instruction can be boosted above is limited to a small
    #: number").  None = unlimited (the percolation/sentinel models).
    max_boost: Optional[int] = None
    #: Boosting hardware buffers results until the branches commit, which
    #: discharges restriction 1: "The scheduler enforces neither
    #: restriction" (Section 2.3).  When True, control dependences are
    #: removed even when the destination is live on the taken path.
    ignore_liveness: bool = False

    def allows(self, instr: Instruction) -> bool:
        """May ``instr`` ever be moved above a branch under this policy?"""
        if not instr.is_speculable:
            return False
        info = instr.info
        if info.writes_mem:
            return self.store_spec
        if info.can_trap:
            # The hardwired zero register cannot hold an exception tag, so a
            # trap-capable instruction writing r0 has nowhere to defer its
            # exception and must stay non-speculative.
            if instr.dest is not None and instr.dest.is_zero:
                return False
            return self.trap_spec
        return True


#: The four scheduling models evaluated in the paper (Section 5).
RESTRICTED = SpeculationPolicy("restricted", trap_spec=False, store_spec=False, sentinels=False)
GENERAL = SpeculationPolicy("general", trap_spec=True, store_spec=False, sentinels=False)
SENTINEL = SpeculationPolicy("sentinel", trap_spec=True, store_spec=False, sentinels=True)
SENTINEL_STORE = SpeculationPolicy(
    "sentinel_store", trap_spec=True, store_spec=True, sentinels=True
)

#: Colwell et al.'s refinement of general percolation (Section 2.4): silent
#: instructions write NaN on a trap, and trapping instructions signal when
#: they consume NaN.  Scheduling is identical to GENERAL — the difference
#: is pure hardware behaviour, modelled by the processor's "colwell" mode —
#: and the paper's two critiques (wrong attribution; conditional-use
#: misses) are demonstrated by the test suite.
COLWELL = SpeculationPolicy("colwell", trap_spec=True, store_spec=False, sentinels=False)

POLICIES = {
    p.name: p for p in (RESTRICTED, GENERAL, SENTINEL, SENTINEL_STORE, COLWELL)
}


def boosting_policy(max_boost: int) -> SpeculationPolicy:
    """Instruction boosting above at most ``max_boost`` branches
    (Section 2.3 — the Smith/Lam/Horowitz model the paper compares
    against).  Stores are speculable too (the shadow store buffers), no
    sentinels are inserted (the shadow hardware detects exceptions at
    branch commit), and restriction 1 is discharged by buffering."""
    if max_boost < 1:
        raise ValueError("boosting needs at least one shadow level")
    return SpeculationPolicy(
        name=f"boosting{max_boost}",
        trap_spec=True,
        store_spec=True,
        sentinels=False,
        max_boost=max_boost,
        ignore_liveness=True,
    )


def first_home_use(
    graph: DepGraph,
    node: int,
    stop_at_irreversible: bool = False,
    policy: Optional["SpeculationPolicy"] = None,
) -> Optional[int]:
    """A home-block use of ``dest(node)`` to serve as its shared sentinel.

    Returns the node index of the use, or None.  The scan stops at the first
    succeeding control instruction (which may itself be the use — a branch
    reading the value is a valid sentinel) and at any redefinition of the
    register, which cuts the sentinel-sharing chain.

    When several home-block uses exist, a use the policy can *never*
    speculate (a branch, typically) is preferred: it is guaranteed to stay
    resident, so the protection chain terminates without ever needing an
    explicit ``check_exception`` — the Section 3.1 observation that "the
    sentinel part of I can be eliminated if there is another instruction J
    in I's home block which uses the result of I", applied with the cheapest
    possible J.  Otherwise the first use is taken, as in the Appendix.

    With ``stop_at_irreversible`` (recovery mode), irreversible instructions
    also bound the home block: "Each irreversible instruction defines a
    basic block boundary as far as the sentinel scheduling algorithm is
    concerned" (Section 3.7, restriction 2).
    """
    instr = graph.nodes[node]
    dest = instr.dest
    if dest is None or dest.is_zero:
        return None
    first: Optional[int] = None
    # Registers are interned singletons, so identity comparison suffices.
    for later in range(node + 1, graph.original_count):
        candidate = graph.nodes[later]
        if candidate.op is Opcode.CLRTAG:
            if candidate.dest is dest:
                return first  # tag reset: the chain cannot pass through
            continue
        if dest in candidate.uses():
            if first is None:
                first = later
            if policy is None or not policy.allows(candidate):
                return later  # guaranteed-resident sentinel
        if candidate.dest is dest:
            return first  # redefined: chain ends here
        if candidate.info.is_control:
            return first
        if stop_at_irreversible and candidate.info.is_irreversible:
            return first
    return first


def reduce_dependence_graph(
    graph: DepGraph,
    liveness: Liveness,
    policy: SpeculationPolicy,
    stop_at_irreversible: bool = False,
    despeculated: frozenset = frozenset(),
) -> DepGraph:
    """Apply the Appendix algorithm in place; returns ``graph``.

    Populates ``graph.unprotected``, ``graph.allowed_spec`` and
    ``graph.shared_sentinel`` and removes the CONTROL arcs the policy
    permits.  ``despeculated`` holds instruction uids the recovery
    iteration has withdrawn speculation permission from (their control
    dependences are retained).
    """

    def _release_control_arcs(node: int) -> None:
        instr = graph.nodes[node]
        control_arcs = graph.control_preds(node)
        # Boosting: only the nearest max_boost branches may be crossed, so
        # control dependences on more distant branches are retained.  Arcs
        # are ranked by source position (larger = nearer to the node).
        releasable = control_arcs
        if policy.max_boost is not None:
            by_distance = sorted(control_arcs, key=lambda a: -a.src)
            releasable = by_distance[: policy.max_boost]
        for arc in releasable:
            branch = graph.nodes[arc.src]
            if policy.ignore_liveness or instr.info.writes_mem:
                # Shadow buffering (boosting) or probationary store-buffer
                # cancellation (Section 4.2) handles the taken path.
                graph.remove_arc(arc)
                continue
            dest = instr.dest
            if dest is None or dest.is_zero:
                graph.remove_arc(arc)
                continue
            if dest not in liveness.live_when_taken(branch.uid):
                graph.remove_arc(arc)

    for node in range(graph.original_count):
        instr = graph.nodes[node]
        allowed = policy.allows(instr) and instr.uid not in despeculated
        if allowed:
            graph.allowed_spec.add(node)

        if instr.info.writes_mem and policy.store_spec:
            # "Dependence reduction also marks all store instructions as
            # unprotected" (Section 4.2).
            graph.unprotected.add(node)
            if allowed:
                _release_control_arcs(node)
            continue

        if node in graph.unprotected:
            use = first_home_use(graph, node, stop_at_irreversible, policy)
            if use is not None:
                graph.unprotected.discard(node)
                graph.unprotected.add(use)
                graph.shared_sentinel[node] = use
            if allowed:
                _release_control_arcs(node)
        elif instr.info.can_trap:
            use = first_home_use(graph, node, stop_at_irreversible, policy)
            if use is not None:
                graph.unprotected.add(use)
                graph.shared_sentinel[node] = use
            else:
                graph.unprotected.add(node)
            if allowed:
                _release_control_arcs(node)
        elif allowed:
            _release_control_arcs(node)

    # --- shared-sentinel home-block pinning ---------------------------
    # A sentinel must stay in its protected instruction's home block.  The
    # builder's guard arcs pin a consumer above a later exit only while its
    # result is live on the taken path; when that result is dead there
    # (accumulator chains killed at the loop top, recovery renaming into a
    # throwaway register), nothing stops downward code motion from sinking
    # the sentinel below the exit — and a tag set on a looping traversal is
    # then overwritten, unreported, by the next iteration (found by
    # differential fuzzing).  Pin every shared sentinel of a speculable
    # instruction above the next conditional branch, mirroring what
    # ``_pin_sentinel`` does for inserted checks.
    if policy.sentinels and graph.shared_sentinel:
        branch_nodes = [
            i
            for i in range(graph.original_count)
            if graph.nodes[i].info.is_cond_branch
        ]
        for protected, use in graph.shared_sentinel.items():
            if protected not in graph.allowed_spec:
                continue
            next_branch = next((b for b in branch_nodes if b > use), None)
            if next_branch is not None and not graph.has_arc(use, next_branch):
                graph.add_arc(use, next_branch, ArcKind.GUARD, 0)

    return graph
