"""Naive reference dependence-graph builder, retained for differential tests.

This is the seed repository's ``build_dependence_graph`` kept in its original
shape: every arc lands in one flat list and every dedup probe is a linear
scan over it, exactly like the pre-index ``DepGraph.find_arc``.  It is
deliberately slow and deliberately independent of the indexed ``DepGraph``
internals, so ``tests/deps/test_builder_differential.py`` can assert the
optimized builder emits the exact same arc multiset.

The single intentional semantic difference from the seed: the anti-arc dedup
probe is kind-aware (``ANTI`` specifically), matching the fix in
:mod:`repro.deps.builder` — the seed's kind-agnostic probe skipped an ANTI
arc whenever *any* arc kind already connected the pair.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..cfg.liveness import Liveness
from ..isa.opcodes import LatClass, Opcode
from ..isa.program import Block
from ..machine.description import BASE_MACHINE
from ..isa.registers import Register
from .builder import (
    ANTI_LATENCY,
    CONTROL_LATENCY,
    GUARD_LATENCY,
    MEM_LOAD_STORE_LATENCY,
    MEM_STORE_LOAD_LATENCY,
    MEM_STORE_STORE_LATENCY,
    OUTPUT_LATENCY,
    SymbolicAddresses,
    _mem_conflict,
    _TRAP_SINK_GUARDS,
)
from .types import ArcKind

#: (src, dst, kind, latency)
RefArc = Tuple[int, int, ArcKind, int]


def build_reference_arcs(
    block: Block,
    liveness: Liveness,
    latencies: Optional[Dict[LatClass, int]] = None,
    irreversible_barriers: bool = False,
) -> List[RefArc]:
    """Arc list of the unreduced dependence graph, by the naive algorithm.

    ``latencies=None`` uses the base machine's table, mirroring
    :func:`repro.deps.builder.build_dependence_graph`.
    """
    if latencies is None:
        latencies = BASE_MACHINE.latencies
    instrs = list(block.instrs)
    n = len(instrs)
    arcs: List[RefArc] = []

    def find(src: int, dst: int, kind: Optional[ArcKind] = None) -> Optional[RefArc]:
        for arc in arcs:
            if arc[0] == src and arc[1] == dst and (kind is None or arc[2] is kind):
                return arc
        return None

    last_def: Dict[Register, int] = {}
    uses_since_def: Dict[Register, List[int]] = {}
    symbolic = SymbolicAddresses()
    mem_ops: List[Tuple[int, bool, Optional[Tuple[int, int]], Optional[str]]] = []
    branch_nodes: List[int] = []
    last_irreversible: Optional[int] = None

    def _lat(node: int) -> int:
        return latencies[instrs[node].op.info.lat_class]

    for idx, instr in enumerate(instrs):
        info = instr.info

        for reg in instr.uses():
            if reg.is_zero:
                continue
            producer = last_def.get(reg)
            if producer is not None and find(producer, idx, ArcKind.FLOW) is None:
                arcs.append((producer, idx, ArcKind.FLOW, _lat(producer)))
            uses_since_def.setdefault(reg, []).append(idx)
        for reg in instr.defs():
            if reg.is_zero:
                continue
            for user in uses_since_def.get(reg, ()):
                if user != idx and find(user, idx, ArcKind.ANTI) is None:
                    arcs.append((user, idx, ArcKind.ANTI, ANTI_LATENCY))
            producer = last_def.get(reg)
            if producer is not None and producer != idx:
                if find(producer, idx, ArcKind.OUTPUT) is None:
                    arcs.append((producer, idx, ArcKind.OUTPUT, OUTPUT_LATENCY))
            last_def[reg] = idx
            uses_since_def[reg] = []

        if info.reads_mem or info.writes_mem:
            expr = symbolic.address_of(instr)
            is_store = info.writes_mem
            for other, other_is_store, other_expr, other_region in mem_ops:
                if not is_store and not other_is_store:
                    continue
                if not _mem_conflict(expr, instr.mem_region, other_expr, other_region):
                    continue
                if other_is_store and not is_store:
                    latency = MEM_STORE_LOAD_LATENCY
                elif is_store and not other_is_store:
                    latency = MEM_LOAD_STORE_LATENCY
                else:
                    latency = MEM_STORE_STORE_LATENCY
                if find(other, idx, ArcKind.MEM) is None:
                    arcs.append((other, idx, ArcKind.MEM, latency))
            mem_ops.append((idx, is_store, expr, instr.mem_region))
        symbolic.on_instruction(instr)

        if irreversible_barriers and last_irreversible is not None:
            arcs.append((last_irreversible, idx, ArcKind.GUARD, 1))
        if info.is_irreversible:
            if irreversible_barriers:
                for earlier in range(idx):
                    if find(earlier, idx) is None:
                        arcs.append((earlier, idx, ArcKind.GUARD, GUARD_LATENCY))
            elif last_irreversible is not None:
                arcs.append((last_irreversible, idx, ArcKind.GUARD, GUARD_LATENCY))
            last_irreversible = idx

        for branch_node in branch_nodes:
            arcs.append((branch_node, idx, ArcKind.CONTROL, CONTROL_LATENCY))
        if info.is_cond_branch:
            branch_nodes.append(idx)

    terminator = (
        n - 1
        if n and instrs[-1].info.is_control and not instrs[-1].info.is_cond_branch
        else None
    )
    for exit_node in branch_nodes:
        live_taken = liveness.live_when_taken(instrs[exit_node].uid)
        for idx in range(exit_node):
            instr = instrs[idx]
            info = instr.info
            needs_guard = (
                info.writes_mem
                or info.is_irreversible
                or (info.can_trap and _TRAP_SINK_GUARDS)
                or instr.op in (Opcode.CHECK, Opcode.CONFIRM, Opcode.CLRTAG)
                or (instr.dest is not None and instr.dest in live_taken)
            )
            if needs_guard and find(idx, exit_node) is None:
                arcs.append((idx, exit_node, ArcKind.GUARD, GUARD_LATENCY))
    if terminator is not None:
        for idx in range(terminator):
            if find(idx, terminator) is None:
                arcs.append((idx, terminator, ArcKind.GUARD, GUARD_LATENCY))

    return arcs
