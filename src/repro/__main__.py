"""``python -m repro`` — regenerate the paper's evaluation.

Delegates to the same logic as ``examples/paper_evaluation.py``.
"""

import argparse
import json
import os

from .eval.figures import figure4_series, figure5_series, render_bars, render_table
from .eval.harness import SweepConfig, run_sweep
from .eval.report import headline_numbers, shape_checks
from .eval.tables import render_table1, render_table2, render_table3
from .workloads.suites import ALL_NAMES


def run_fuzz(args) -> int:
    """``--fuzz N``: run a differential fuzz campaign and summarize it."""
    import os
    import sys

    from .arch.batchproc import batch_default
    from .fuzz.campaign import CampaignConfig, run_campaign

    config = CampaignConfig(
        seeds=args.fuzz, base_seed=args.fuzz_seed, jobs=args.fuzz_jobs
    )
    heartbeat = max(1, config.seeds // 10)

    def progress(seed: int, partial) -> None:
        done = partial.seeds_run
        if done % heartbeat == 0 or not partial.ok or config.jobs != 1:
            status = "ok" if partial.ok else f"{len(partial.findings)} failing"
            print(
                f"  ... {done}/{config.seeds} seeds, "
                f"{partial.cells_checked} cells, {status}",
                file=sys.stderr,
            )

    result = run_campaign(config, progress=progress)
    print(result.render_summary())

    written = []
    if args.fuzz_out is not None and result.findings:
        os.makedirs(args.fuzz_out, exist_ok=True)
        for finding in result.findings:
            for index, case in enumerate(finding.cases):
                name = f"seed{finding.seed}_{case.category}_{index}.json"
                path = os.path.join(args.fuzz_out, name)
                with open(path, "w") as handle:
                    handle.write(case.dumps())
                written.append(path)
        print(f"wrote {len(written)} reproducers to {args.fuzz_out}")
    if args.fuzz_report is not None:
        with open(args.fuzz_report, "w") as handle:
            json.dump(
                {
                    "seeds": result.seeds_run,
                    "base_seed": config.base_seed,
                    "cells_checked": result.cells_checked,
                    "wall_seconds": result.wall_seconds,
                    "seeds_per_second": result.seeds_per_second,
                    "cells_per_second": result.cells_per_second,
                    "batch_proc": batch_default(),
                    "batch_counters": result.batch_counters,
                    "planned_traps": result.planned_traps,
                    "benign_seeds": result.benign_seeds,
                    "traps_by_kind": result.coverage.traps_by_kind,
                    "guarded_executed": result.coverage.guarded_executed,
                    "guarded_skipped": result.coverage.guarded_skipped,
                    "unguarded": result.coverage.unguarded,
                    "failing_seeds": [f.seed for f in result.findings],
                    "failures_by_category": result.failures_by_category,
                    "reproducers": written,
                },
                handle,
                indent=2,
            )
            handle.write("\n")
    if not result.ok:
        for finding in result.findings:
            print(
                f"FAIL seed={finding.seed} model={finding.model} "
                f"categories={','.join(finding.categories)}"
            )
        return 1
    return 0


def run_tune(args, benchmarks) -> int:
    """``--tune``: search priority weights and report the winners."""
    from .tune import TuneConfig, TuneTarget, run_search

    policies = tuple(
        name.strip() for name in args.tune_policies.split(",") if name.strip()
    )
    rates = tuple(
        int(rate) for rate in args.tune_rates.split(",") if rate.strip()
    )
    stages = tuple(
        stage.strip() for stage in args.tune_stages.split(",") if stage.strip()
    )
    config = TuneConfig(
        benchmarks=benchmarks,
        target=TuneTarget(
            policy_names=policies,
            issue_rates=rates,
            unroll_factor=args.unroll,
            scale=args.scale,
        ),
        budget=args.tune_budget,
        stages=stages,
        mode=args.tune_mode,
        jobs=args.tune_jobs,
        seed=args.tune_seed,
        batch=args.tune_batch,
    )
    report = run_search(config)
    print(report.render_summary())
    if args.tune_out is not None:
        with open(args.tune_out, "w") as handle:
            json.dump(report.to_payload(), handle, indent=2)
            handle.write("\n")
        print(f"wrote search report to {args.tune_out}")
    if args.tune_weights_out is not None:
        with open(args.tune_weights_out, "w") as handle:
            json.dump(report.tuned().to_payload(), handle, indent=2)
            handle.write("\n")
        print(f"wrote winning weights to {args.tune_weights_out}")
    return 0


def main() -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the Sentinel Scheduling evaluation "
        "(Tables 1-3, Figures 4-5, Section 5.2 aggregates).",
    )
    parser.add_argument("--bars", action="store_true", help="ASCII bar charts")
    parser.add_argument("--scale", type=float, default=1.0, help="workload scale")
    parser.add_argument("--unroll", type=int, default=4, help="superblock unroll")
    parser.add_argument(
        "--skip-tables", action="store_true", help="only run the Figure 4/5 sweep"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the sweep (0 = auto: CPU count, serial "
        "fallback on small machines/workloads)",
    )
    parser.add_argument(
        "--timings", action="store_true", help="print per-stage wall time"
    )
    parser.add_argument(
        "--benchmarks",
        type=str,
        default=None,
        metavar="NAMES",
        help="comma-separated benchmark subset (default: the full suite)",
    )
    parser.add_argument(
        "--timings-out",
        type=str,
        default=None,
        metavar="PATH",
        help="write per-benchmark stage timings as JSON to PATH",
    )
    parser.add_argument(
        "--passes",
        action="store_true",
        help="print the resolved compilation pipeline (pass table) and exit",
    )
    parser.add_argument(
        "--verify-ir",
        action="store_true",
        help="run the IR verifier after every compilation pass",
    )
    parser.add_argument(
        "--trace-passes",
        type=str,
        default=None,
        metavar="PATH",
        const="-",
        nargs="?",
        help="dump per-pass, per-block compilation timings (JSON to PATH, "
        "or a table to stdout when PATH is omitted)",
    )
    parser.add_argument(
        "--no-compile-cache",
        action="store_true",
        help="disable the content-addressed on-disk compile cache "
        "(cache directory: $REPRO_CACHE_DIR or ~/.cache/repro-sentinel)",
    )
    parser.add_argument(
        "--no-fast-proc",
        action="store_true",
        help="run cycle-level simulations on the reference Processor "
        "instead of the pre-decoded fast engine",
    )
    parser.add_argument(
        "--no-batch-proc",
        action="store_true",
        help="disable the vectorized batch executor (coalescing + numpy "
        "lockstep) for sweep/fuzz cells; results are bit-identical either "
        "way (equivalent to REPRO_BATCH_PROC=0)",
    )
    parser.add_argument(
        "--simulate",
        type=int,
        default=0,
        metavar="N",
        help="cycle-level-simulate N input lanes per sweep cell through the "
        "batch executor (default 0: analytic cycle estimates only)",
    )
    parser.add_argument(
        "--weights",
        type=str,
        default=None,
        metavar="PATH",
        help="run the sweep under tuned scheduler priority weights "
        "(a tuned_weights.json written by --tune)",
    )
    parser.add_argument(
        "--machine",
        type=str,
        default=None,
        metavar="PATH",
        help="run the sweep on the machine described by a machine JSON "
        "file (see --dump-machine; rescaled to every issue rate)",
    )
    parser.add_argument(
        "--machine-preset",
        type=str,
        default=None,
        metavar="NAME",
        help="run the sweep on a named machine preset "
        "(paper, fetchbreak, btfn, bimodal, cache, realistic)",
    )
    parser.add_argument(
        "--dump-machine",
        type=str,
        default=None,
        metavar="NAME",
        help="print a preset's machine JSON (editable, loadable via "
        "--machine) and exit",
    )
    parser.add_argument(
        "--tune",
        action="store_true",
        help="search scheduler priority weights (grid -> beam -> annealing) "
        "over the selected benchmarks instead of running the sweep",
    )
    parser.add_argument(
        "--tune-budget",
        type=int,
        default=120,
        metavar="N",
        help="fresh candidate evaluations per benchmark (default 120)",
    )
    parser.add_argument(
        "--tune-stages",
        type=str,
        default="grid,beam,anneal",
        metavar="NAMES",
        help="comma-separated search stages to run, in order "
        "(default grid,beam,anneal)",
    )
    parser.add_argument(
        "--tune-jobs",
        type=int,
        default=0,
        metavar="J",
        help="worker processes for the tuning fan-out (0 = auto); results "
        "are identical for any value",
    )
    parser.add_argument(
        "--tune-mode",
        type=str,
        default="per_benchmark",
        choices=("per_benchmark", "global"),
        help="per_benchmark = one tuned vector per benchmark (default); "
        "global = one shared vector for the whole selection",
    )
    parser.add_argument(
        "--tune-seed",
        type=int,
        default=0,
        metavar="S",
        help="search RNG seed (default 0)",
    )
    parser.add_argument(
        "--tune-policies",
        type=str,
        default="restricted,general,sentinel,sentinel_store",
        metavar="NAMES",
        help="policies in the tuning objective (comma-separated)",
    )
    parser.add_argument(
        "--tune-rates",
        type=str,
        default="2,4,8",
        metavar="RATES",
        help="issue rates in the tuning objective (comma-separated)",
    )
    parser.add_argument(
        "--tune-batch",
        dest="tune_batch",
        action="store_true",
        default=True,
        help="price candidate populations through the fused batch "
        "scheduling engine (default; bit-identical winners)",
    )
    parser.add_argument(
        "--no-tune-batch",
        dest="tune_batch",
        action="store_false",
        help="price every candidate with the sequential scheduler "
        "(reference path for A/B timing and validation)",
    )
    parser.add_argument(
        "--tune-out",
        type=str,
        default=None,
        metavar="PATH",
        help="write the full search report (per-benchmark winners, per-cell "
        "geomean reductions, stage timings) as JSON to PATH",
    )
    parser.add_argument(
        "--tune-weights-out",
        type=str,
        default=None,
        metavar="PATH",
        help="write the winning weights as a tuned_weights.json loadable "
        "via --weights",
    )
    parser.add_argument(
        "--fuzz",
        type=int,
        default=None,
        metavar="N",
        help="run the differential fault-injection fuzzer over N seeds "
        "(4 policies x issue rates 1/2/4/8 per seed) instead of the sweep",
    )
    parser.add_argument(
        "--fuzz-seed",
        type=int,
        default=0,
        metavar="S",
        help="first campaign seed (seeds S..S+N-1; default 0)",
    )
    parser.add_argument(
        "--fuzz-jobs",
        type=int,
        default=1,
        metavar="J",
        help="worker processes for the fuzz campaign (0 = auto: CPU count, "
        "serial fallback on one CPU or small campaigns); seeds are sharded "
        "round-robin and merged deterministically, so results are identical "
        "for any value",
    )
    parser.add_argument(
        "--fuzz-out",
        type=str,
        default=None,
        metavar="DIR",
        help="write minimized reproducers for failing fuzz seeds into DIR",
    )
    parser.add_argument(
        "--fuzz-report",
        type=str,
        default=None,
        metavar="PATH",
        help="write the fuzz campaign summary (counts, coverage, wall time) "
        "as JSON to PATH",
    )
    parser.add_argument(
        "--serve",
        action="store_true",
        help="run the HTTP/JSON service (POST /v1/compile, /v1/simulate, "
        "/v1/sweep, /v1/fuzz; GET /v1/health, /v1/metrics) instead of "
        "the sweep",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8321,
        metavar="N",
        help="service listen port (default 8321; 0 = ephemeral)",
    )
    parser.add_argument(
        "--host",
        type=str,
        default="127.0.0.1",
        metavar="ADDR",
        help="service listen address (default 127.0.0.1)",
    )
    parser.add_argument(
        "--service-workers",
        type=int,
        default=0,
        metavar="J",
        help="service process-pool width for CPU-bound jobs "
        "(default 0 = CPU count)",
    )
    parser.add_argument(
        "--max-pending",
        type=int,
        default=32,
        metavar="N",
        help="jobs admitted but unfinished before the service answers "
        "429 + Retry-After (default 32)",
    )
    args = parser.parse_args()

    if args.no_fast_proc:
        # run_scheduled consults this env knob whenever ``fast`` is not
        # passed explicitly, so one switch covers every simulation the
        # process runs (sweep cells, fuzz oracle, examples).
        os.environ["REPRO_FAST_PROC"] = "0"

    if args.no_batch_proc:
        # batch_default() consults this knob wherever ``batch`` is not
        # passed explicitly — and pool_env() forwards it to sweep/fuzz
        # worker processes.
        os.environ["REPRO_BATCH_PROC"] = "0"

    if args.dump_machine is not None:
        from .machine.presets import machine_preset

        try:
            print(machine_preset(args.dump_machine).to_json())
        except ValueError as exc:
            parser.error(str(exc))
        return

    machine = None
    if args.machine is not None and args.machine_preset is not None:
        parser.error("--machine and --machine-preset are mutually exclusive")
    if args.machine is not None:
        from .machine.presets import load_machine_file

        try:
            machine = load_machine_file(args.machine)
        except (OSError, ValueError) as exc:
            parser.error(str(exc))
    elif args.machine_preset is not None:
        from .machine.presets import machine_preset

        try:
            machine = machine_preset(args.machine_preset)
        except ValueError as exc:
            parser.error(str(exc))

    if args.serve:
        from .service.server import ServiceConfig, serve

        workers = args.service_workers or (os.cpu_count() or 1)
        raise SystemExit(
            serve(
                ServiceConfig(
                    host=args.host,
                    port=args.port,
                    workers=workers,
                    max_pending=args.max_pending,
                )
            )
        )

    if args.fuzz is not None:
        raise SystemExit(run_fuzz(args))

    if args.passes:
        from .pipeline import PassManager, backend_pipeline, default_pipeline

        print("front end (prepare_compilation):")
        print(PassManager(default_pipeline()).describe())
        print()
        print("back end (schedule_prepared, once per machine):")
        print(PassManager(backend_pipeline()).describe())
        return

    benchmarks = tuple(ALL_NAMES)
    if args.benchmarks is not None:
        benchmarks = tuple(name.strip() for name in args.benchmarks.split(",") if name.strip())
        unknown = [name for name in benchmarks if name not in ALL_NAMES]
        if unknown:
            parser.error(f"unknown benchmarks: {', '.join(unknown)}")

    if args.tune:
        raise SystemExit(run_tune(args, benchmarks))

    weights = None
    if args.weights is not None:
        from .sched.priority import load_weights_file

        weights = load_weights_file(args.weights)

    if not args.skip_tables:
        for render in (render_table1, render_table2, render_table3):
            print(render())
            print()

    sweep = run_sweep(
        SweepConfig(
            benchmarks=benchmarks,
            scale=args.scale,
            unroll_factor=args.unroll,
            jobs=args.jobs,
            simulate=args.simulate,
            verify_ir=args.verify_ir,
            trace_passes=args.trace_passes is not None,
            compile_cache=not args.no_compile_cache,
            weights=weights,
            machine=machine,
        )
    )
    if args.timings:
        print(sweep.render_timings())
        print()
    if args.trace_passes is not None:
        payload = {
            "pass_totals": sweep.pass_totals(),
            "per_benchmark_passes": sweep.pass_timings,
            "trace": sweep.pass_trace,
        }
        if args.trace_passes == "-":
            for bench, events in sweep.pass_trace.items():
                print(f"{bench}:")
                for event in events:
                    unit = event["block"] or "(program)"
                    print(
                        f"  {event['pass']:<14} {unit:<24} "
                        f"{event['wall_seconds'] * 1e3:8.3f} ms"
                    )
            print()
        else:
            with open(args.trace_passes, "w") as handle:
                json.dump(payload, handle, indent=2)
                handle.write("\n")
    if args.timings_out is not None:
        with open(args.timings_out, "w") as handle:
            json.dump(
                {
                    "wall_seconds": sweep.wall_seconds,
                    "effective_jobs": sweep.effective_jobs,
                    "stage_totals": sweep.stage_totals(),
                    "stage_maxima": sweep.stage_maxima(),
                    "per_benchmark": sweep.timings,
                    "worker_pids": sweep.worker_pids,
                    "interp_steps": sweep.interp_steps,
                    "cache_counters": sweep.cache_counters,
                },
                handle,
                indent=2,
            )
            handle.write("\n")
    renderer = render_bars if args.bars else render_table
    print(renderer(figure4_series(sweep)))
    print()
    print(renderer(figure5_series(sweep)))
    print()
    print("Headline aggregates (Section 5.2), paper vs measured:")
    for headline in headline_numbers(sweep):
        print("  " + headline.format())
    print()
    print("Qualitative shape checks:")
    for label, passed in shape_checks(sweep).items():
        print(f"  [{'ok' if passed else 'FAIL'}] {label}")


if __name__ == "__main__":
    main()
