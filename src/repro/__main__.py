"""``python -m repro`` — regenerate the paper's evaluation.

Delegates to the same logic as ``examples/paper_evaluation.py``.
"""

import argparse
import json

from .eval.figures import figure4_series, figure5_series, render_bars, render_table
from .eval.harness import SweepConfig, run_sweep
from .eval.report import headline_numbers, shape_checks
from .eval.tables import render_table1, render_table2, render_table3
from .workloads.suites import ALL_NAMES


def main() -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the Sentinel Scheduling evaluation "
        "(Tables 1-3, Figures 4-5, Section 5.2 aggregates).",
    )
    parser.add_argument("--bars", action="store_true", help="ASCII bar charts")
    parser.add_argument("--scale", type=float, default=1.0, help="workload scale")
    parser.add_argument("--unroll", type=int, default=4, help="superblock unroll")
    parser.add_argument(
        "--skip-tables", action="store_true", help="only run the Figure 4/5 sweep"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the sweep (0 = auto: CPU count, serial "
        "fallback on small machines/workloads)",
    )
    parser.add_argument(
        "--timings", action="store_true", help="print per-stage wall time"
    )
    parser.add_argument(
        "--benchmarks",
        type=str,
        default=None,
        metavar="NAMES",
        help="comma-separated benchmark subset (default: the full suite)",
    )
    parser.add_argument(
        "--timings-out",
        type=str,
        default=None,
        metavar="PATH",
        help="write per-benchmark stage timings as JSON to PATH",
    )
    parser.add_argument(
        "--passes",
        action="store_true",
        help="print the resolved compilation pipeline (pass table) and exit",
    )
    parser.add_argument(
        "--verify-ir",
        action="store_true",
        help="run the IR verifier after every compilation pass",
    )
    parser.add_argument(
        "--trace-passes",
        type=str,
        default=None,
        metavar="PATH",
        const="-",
        nargs="?",
        help="dump per-pass, per-block compilation timings (JSON to PATH, "
        "or a table to stdout when PATH is omitted)",
    )
    args = parser.parse_args()

    if args.passes:
        from .pipeline import PassManager, backend_pipeline, default_pipeline

        print("front end (prepare_compilation):")
        print(PassManager(default_pipeline()).describe())
        print()
        print("back end (schedule_prepared, once per machine):")
        print(PassManager(backend_pipeline()).describe())
        return

    benchmarks = tuple(ALL_NAMES)
    if args.benchmarks is not None:
        benchmarks = tuple(name.strip() for name in args.benchmarks.split(",") if name.strip())
        unknown = [name for name in benchmarks if name not in ALL_NAMES]
        if unknown:
            parser.error(f"unknown benchmarks: {', '.join(unknown)}")

    if not args.skip_tables:
        for render in (render_table1, render_table2, render_table3):
            print(render())
            print()

    sweep = run_sweep(
        SweepConfig(
            benchmarks=benchmarks,
            scale=args.scale,
            unroll_factor=args.unroll,
            jobs=args.jobs,
            verify_ir=args.verify_ir,
            trace_passes=args.trace_passes is not None,
        )
    )
    if args.timings:
        print(sweep.render_timings())
        print()
    if args.trace_passes is not None:
        payload = {
            "pass_totals": sweep.pass_totals(),
            "per_benchmark_passes": sweep.pass_timings,
            "trace": sweep.pass_trace,
        }
        if args.trace_passes == "-":
            for bench, events in sweep.pass_trace.items():
                print(f"{bench}:")
                for event in events:
                    unit = event["block"] or "(program)"
                    print(
                        f"  {event['pass']:<14} {unit:<24} "
                        f"{event['wall_seconds'] * 1e3:8.3f} ms"
                    )
            print()
        else:
            with open(args.trace_passes, "w") as handle:
                json.dump(payload, handle, indent=2)
                handle.write("\n")
    if args.timings_out is not None:
        with open(args.timings_out, "w") as handle:
            json.dump(
                {
                    "wall_seconds": sweep.wall_seconds,
                    "effective_jobs": sweep.effective_jobs,
                    "stage_totals": sweep.stage_totals(),
                    "stage_maxima": sweep.stage_maxima(),
                    "per_benchmark": sweep.timings,
                    "worker_pids": sweep.worker_pids,
                    "interp_steps": sweep.interp_steps,
                },
                handle,
                indent=2,
            )
            handle.write("\n")
    renderer = render_bars if args.bars else render_table
    print(renderer(figure4_series(sweep)))
    print()
    print(renderer(figure5_series(sweep)))
    print()
    print("Headline aggregates (Section 5.2), paper vs measured:")
    for headline in headline_numbers(sweep):
        print("  " + headline.format())
    print()
    print("Qualitative shape checks:")
    for label, passed in shape_checks(sweep).items():
        print(f"  [{'ok' if passed else 'FAIL'}] {label}")


if __name__ == "__main__":
    main()
