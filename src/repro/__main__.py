"""``python -m repro`` — regenerate the paper's evaluation.

Delegates to the same logic as ``examples/paper_evaluation.py``.
"""

import argparse

from .eval.figures import figure4_series, figure5_series, render_bars, render_table
from .eval.harness import SweepConfig, run_sweep
from .eval.report import headline_numbers, shape_checks
from .eval.tables import render_table1, render_table2, render_table3


def main() -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the Sentinel Scheduling evaluation "
        "(Tables 1-3, Figures 4-5, Section 5.2 aggregates).",
    )
    parser.add_argument("--bars", action="store_true", help="ASCII bar charts")
    parser.add_argument("--scale", type=float, default=1.0, help="workload scale")
    parser.add_argument("--unroll", type=int, default=4, help="superblock unroll")
    parser.add_argument(
        "--skip-tables", action="store_true", help="only run the Figure 4/5 sweep"
    )
    parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes for the sweep"
    )
    parser.add_argument(
        "--timings", action="store_true", help="print per-stage wall time"
    )
    args = parser.parse_args()

    if not args.skip_tables:
        for render in (render_table1, render_table2, render_table3):
            print(render())
            print()

    sweep = run_sweep(
        SweepConfig(scale=args.scale, unroll_factor=args.unroll, jobs=args.jobs)
    )
    if args.timings:
        print(sweep.render_timings())
        print()
    renderer = render_bars if args.bars else render_table
    print(renderer(figure4_series(sweep)))
    print()
    print(renderer(figure5_series(sweep)))
    print()
    print("Headline aggregates (Section 5.2), paper vs measured:")
    for headline in headline_numbers(sweep):
        print("  " + headline.format())
    print()
    print("Qualitative shape checks:")
    for label, passed in shape_checks(sweep).items():
        print(f"  [{'ok' if passed else 'FAIL'}] {label}")


if __name__ == "__main__":
    main()
