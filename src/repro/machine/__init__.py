"""Machine model: issue width, Table 3 latencies, store buffer size,
and the configurable microarchitectural timing axes (fetch / branch
predictor / I-D caches)."""

from .description import (
    BASE_MACHINE,
    BranchPredictorModel,
    CacheModel,
    FetchModel,
    MACHINE_JSON_VERSION,
    MachineDescription,
    PAPER_ISSUE_RATES,
    paper_machine,
)
from .presets import MACHINE_PRESETS, load_machine_file, machine_preset
from .resources import CycleResources, word_resource_violation

__all__ = [
    "BASE_MACHINE",
    "BranchPredictorModel",
    "CacheModel",
    "FetchModel",
    "MACHINE_JSON_VERSION",
    "MACHINE_PRESETS",
    "MachineDescription",
    "PAPER_ISSUE_RATES",
    "paper_machine",
    "machine_preset",
    "load_machine_file",
    "CycleResources",
    "word_resource_violation",
]
