"""Machine model: issue width, Table 3 latencies, store buffer size."""

from .description import (
    BASE_MACHINE,
    MachineDescription,
    PAPER_ISSUE_RATES,
    paper_machine,
)
from .resources import CycleResources

__all__ = [
    "BASE_MACHINE",
    "MachineDescription",
    "PAPER_ISSUE_RATES",
    "paper_machine",
    "CycleResources",
]
