"""Per-cycle issue-resource bookkeeping for the list scheduler."""

from __future__ import annotations

from typing import Optional, Sequence

from ..isa.instruction import Instruction
from .description import MachineDescription


def word_resource_violation(
    word: Sequence[Instruction], machine: MachineDescription
) -> Optional[str]:
    """``None``, or a message describing how ``word`` exceeds the machine's
    per-cycle limits (issue width, branches, memory operations).

    This is the single definition of "fits in one cycle" shared by the
    schedule verifier and the execution engines; it counts exactly what
    :class:`CycleResources` charges the scheduler for.
    """
    if len(word) > machine.issue_width:
        return f"{len(word)} ops exceed issue width {machine.issue_width}"
    br_limit = machine.branches_per_cycle
    mem_limit = machine.memory_ops_per_cycle
    if br_limit is None and mem_limit is None:
        return None
    branches = memory_ops = 0
    for instr in word:
        info = instr.info
        if info.is_control:
            branches += 1
        if info.reads_mem or info.writes_mem:
            memory_ops += 1
    if br_limit is not None and branches > br_limit:
        return f"{branches} control ops exceed branches_per_cycle={br_limit}"
    if mem_limit is not None and memory_ops > mem_limit:
        return f"{memory_ops} memory ops exceed memory_ops_per_cycle={mem_limit}"
    return None


class CycleResources:
    """Tracks what has been issued into the current cycle's word."""

    def __init__(self, machine: MachineDescription) -> None:
        self.machine = machine
        self.slots_used = 0
        self.branches = 0
        self.memory_ops = 0

    def can_issue(self, instr: Instruction) -> bool:
        machine = self.machine
        if self.slots_used >= machine.issue_width:
            return False
        info = instr.info
        if info.is_control and machine.branches_per_cycle is not None:
            if self.branches >= machine.branches_per_cycle:
                return False
        if (info.reads_mem or info.writes_mem) and machine.memory_ops_per_cycle is not None:
            if self.memory_ops >= machine.memory_ops_per_cycle:
                return False
        return True

    def commit(self, instr: Instruction) -> None:
        self.slots_used += 1
        info = instr.info
        if info.is_control:
            self.branches += 1
        if info.reads_mem or info.writes_mem:
            self.memory_ops += 1

    @property
    def full(self) -> bool:
        return self.slots_used >= self.machine.issue_width
