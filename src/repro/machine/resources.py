"""Per-cycle issue-resource bookkeeping for the list scheduler."""

from __future__ import annotations

from ..isa.instruction import Instruction
from .description import MachineDescription


class CycleResources:
    """Tracks what has been issued into the current cycle's word."""

    def __init__(self, machine: MachineDescription) -> None:
        self.machine = machine
        self.slots_used = 0
        self.branches = 0
        self.memory_ops = 0

    def can_issue(self, instr: Instruction) -> bool:
        machine = self.machine
        if self.slots_used >= machine.issue_width:
            return False
        info = instr.info
        if info.is_control and machine.branches_per_cycle is not None:
            if self.branches >= machine.branches_per_cycle:
                return False
        if (info.reads_mem or info.writes_mem) and machine.memory_ops_per_cycle is not None:
            if self.memory_ops >= machine.memory_ops_per_cycle:
                return False
        return True

    def commit(self, instr: Instruction) -> None:
        self.slots_used += 1
        info = instr.info
        if info.is_control:
            self.branches += 1
        if info.reads_mem or info.writes_mem:
            self.memory_ops += 1

    @property
    def full(self) -> bool:
        return self.slots_used >= self.machine.issue_width
