"""Machine descriptions for the simulated VLIW/superscalar processors.

Section 5.1: "The instruction scheduler takes as an input a machine
description file that characterizes the instruction set, the
microarchitecture (including the number of instructions that can be
fetched/issued in a cycle and the instruction latencies), and the code
scheduling model.  The underlying microarchitecture is assumed to have
CRAY-1 style interlocking and deterministic instruction latencies
(Table 3) ... The basic processor has 64 integer registers, 64 floating
point registers, and an 8 entry store buffer."

Section 5.2: "No limitation has been placed on the combination of
instructions that can be issued in the same cycle" — so the only hard
resource is the issue width; optional per-class limits exist for ablation
studies and default to unlimited.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..isa.opcodes import LatClass, Opcode, PAPER_LATENCIES, latency_of


@dataclass(frozen=True)
class MachineDescription:
    """Static description of one processor configuration."""

    name: str
    #: Maximum instructions fetched/issued per cycle (paper: 1, 2, 4, 8).
    issue_width: int
    #: Deterministic latencies per class (paper Table 3 by default).
    latencies: Dict[LatClass, int] = field(default_factory=lambda: dict(PAPER_LATENCIES))
    #: Store buffer entries between CPU and data cache (paper: 8).
    store_buffer_size: int = 8
    #: Optional per-cycle limits (None = unlimited, the paper's setting).
    branches_per_cycle: Optional[int] = None
    memory_ops_per_cycle: Optional[int] = None
    #: Depth of the PC History Queue used to report exceptions of
    #: non-uniform-latency units (Section 3.2).
    pc_history_depth: int = 32

    def latency(self, op: Opcode) -> int:
        return latency_of(op, self.latencies)

    def __post_init__(self) -> None:
        if self.issue_width < 1:
            raise ValueError("issue width must be >= 1")
        if self.store_buffer_size < 1:
            raise ValueError("store buffer needs at least one entry")
        missing = [cls for cls in LatClass if cls not in self.latencies]
        if missing:
            raise ValueError(f"latency table missing classes: {missing}")


def paper_machine(issue_width: int, store_buffer_size: int = 8) -> MachineDescription:
    """The paper's evaluation machine at a given issue rate (Section 5.1)."""
    return MachineDescription(
        name=f"paper-issue{issue_width}",
        issue_width=issue_width,
        store_buffer_size=store_buffer_size,
    )


#: The base machine of all speedup calculations: "The base machine ... has an
#: issue rate of 1 and supports the restricted percolation scheduling model"
#: (Section 5.2).
BASE_MACHINE = paper_machine(1)

#: The issue rates evaluated in Figures 4 and 5.
PAPER_ISSUE_RATES = (2, 4, 8)
