"""Machine descriptions for the simulated VLIW/superscalar processors.

Section 5.1: "The instruction scheduler takes as an input a machine
description file that characterizes the instruction set, the
microarchitecture (including the number of instructions that can be
fetched/issued in a cycle and the instruction latencies), and the code
scheduling model.  The underlying microarchitecture is assumed to have
CRAY-1 style interlocking and deterministic instruction latencies
(Table 3) ... The basic processor has 64 integer registers, 64 floating
point registers, and an 8 entry store buffer."

Section 5.2: "No limitation has been placed on the combination of
instructions that can be issued in the same cycle" — so the only hard
resource is the issue width; optional per-class limits exist for ablation
studies and default to unlimited.

Beyond the paper machine, the description carries three optional
microarchitectural axes, each defaulting to the paper's ideal setting:

* :class:`FetchModel` — ideal single-cycle fetch of any word, or variable
  bandwidth (a word wider than the fetch width takes extra cycles to
  assemble) with a fetch break on every taken redirect, after
  Ramachandran & Johnson's variable-instruction-fetch-rate model.
* :class:`BranchPredictorModel` — perfect prediction (the paper),
  static backward-taken/forward-not-taken, or a small bimodal table of
  2-bit counters; mispredictions charge a redirect penalty on the next
  fetch.
* :class:`CacheModel` (one instance each for I and D) — perfect caches
  (the paper's 100% hit rate) or a sized direct-mapped cache whose
  misses stall fetch (I-side) or extend load latency (D-side).

A machine whose three axes are all ideal is *timing-ideal*
(:attr:`MachineDescription.is_ideal_timing`), and every executor takes a
zero-cost fast path that is bit-identical to the pre-axis behavior.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from ..isa.opcodes import LatClass, Opcode, PAPER_LATENCIES, latency_of

#: Version tag of the machine JSON schema (``to_json`` / ``from_json``).
MACHINE_JSON_VERSION = 1


@dataclass(frozen=True)
class FetchModel:
    """Front-end fetch bandwidth model.

    ``mode="ideal"`` (the paper): any word issues the cycle it is
    reached, taken branches redirect for free.  ``mode="variable"``:
    fetching a word with more than ``width`` operations (``None`` =
    the machine's issue width) takes ``ceil(slots / width)`` cycles,
    and every taken redirect (branch, jump, recovery re-entry) breaks
    the fetch pipeline for ``taken_branch_break`` extra cycles.
    """

    mode: str = "ideal"
    #: Operations fetched per cycle; ``None`` means the issue width.
    width: Optional[int] = None
    #: Extra cycles lost on every taken redirect (variable mode only).
    taken_branch_break: int = 1

    def __post_init__(self) -> None:
        if self.mode not in ("ideal", "variable"):
            raise ValueError(f"unknown fetch mode {self.mode!r}")
        if self.width is not None and self.width < 1:
            raise ValueError("fetch width must be >= 1 (or None)")
        if self.taken_branch_break < 0:
            raise ValueError("taken-branch fetch break must be >= 0")

    @property
    def is_ideal(self) -> bool:
        return self.mode == "ideal"


@dataclass(frozen=True)
class BranchPredictorModel:
    """Conditional-branch direction predictor.

    ``kind="perfect"`` (the paper) never mispredicts.  ``kind="btfn"``
    statically predicts backward branches taken and forward branches
    not-taken.  ``kind="bimodal"`` keeps ``table_size`` two-bit
    saturating counters indexed by the branch's static word address,
    initialized to weakly-not-taken.  A mispredicted direction charges
    ``mispredict_penalty`` redirect cycles against the next fetch.
    """

    kind: str = "perfect"
    #: Redirect cycles charged on each misprediction.
    mispredict_penalty: int = 3
    #: Number of 2-bit counters (bimodal only).
    table_size: int = 256

    def __post_init__(self) -> None:
        if self.kind not in ("perfect", "btfn", "bimodal"):
            raise ValueError(f"unknown predictor kind {self.kind!r}")
        if self.mispredict_penalty < 0:
            raise ValueError("mispredict penalty must be >= 0")
        if self.table_size < 1:
            raise ValueError("predictor table needs at least one entry")

    @property
    def is_ideal(self) -> bool:
        return self.kind == "perfect"


@dataclass(frozen=True)
class CacheModel:
    """A direct-mapped cache, or the paper's perfect (always-hit) cache.

    The cache models *timing only* — values always come from memory (or
    the store buffer), so a stale line can cost cycles but never
    correctness.  Addresses are word-granular; a line holds
    ``line_size`` words and a miss costs ``miss_penalty`` extra cycles.
    Stores write around the cache (no allocate, no invalidate).
    """

    kind: str = "perfect"
    lines: int = 64
    line_size: int = 4
    miss_penalty: int = 8

    def __post_init__(self) -> None:
        if self.kind not in ("perfect", "direct"):
            raise ValueError(f"unknown cache kind {self.kind!r}")
        if self.lines < 1:
            raise ValueError("cache needs at least one line")
        if self.line_size < 1:
            raise ValueError("cache line size must be >= 1")
        if self.miss_penalty < 0:
            raise ValueError("cache miss penalty must be >= 0")

    @property
    def is_ideal(self) -> bool:
        return self.kind == "perfect"


#: Shared ideal singletons so default machines compare cheaply.
IDEAL_FETCH = FetchModel()
PERFECT_PREDICTOR = BranchPredictorModel()
PERFECT_CACHE = CacheModel()


@dataclass(frozen=True)
class MachineDescription:
    """Static description of one processor configuration."""

    name: str
    #: Maximum instructions fetched/issued per cycle (paper: 1, 2, 4, 8).
    issue_width: int
    #: Deterministic latencies per class (paper Table 3 by default).
    latencies: Dict[LatClass, int] = field(default_factory=lambda: dict(PAPER_LATENCIES))
    #: Store buffer entries between CPU and data cache (paper: 8).
    store_buffer_size: int = 8
    #: Optional per-cycle limits (None = unlimited, the paper's setting).
    branches_per_cycle: Optional[int] = None
    memory_ops_per_cycle: Optional[int] = None
    #: Depth of the PC History Queue used to report exceptions of
    #: non-uniform-latency units (Section 3.2).
    pc_history_depth: int = 32
    #: Front-end fetch bandwidth model (ideal by default).
    fetch: FetchModel = IDEAL_FETCH
    #: Conditional-branch predictor (perfect by default).
    predictor: BranchPredictorModel = PERFECT_PREDICTOR
    #: Instruction cache (perfect by default); misses stall fetch.
    icache: CacheModel = PERFECT_CACHE
    #: Data cache (perfect by default); misses extend load latency.
    dcache: CacheModel = PERFECT_CACHE

    def latency(self, op: Opcode) -> int:
        return latency_of(op, self.latencies)

    @property
    def is_ideal_timing(self) -> bool:
        """True when every microarchitectural axis is the paper's ideal.

        Executors use this to skip the timing layer entirely, making the
        default machine's cycle counts bit-identical by construction.
        """
        return (
            self.fetch.is_ideal
            and self.predictor.is_ideal
            and self.icache.is_ideal
            and self.dcache.is_ideal
        )

    @property
    def fetch_width(self) -> int:
        """Effective fetch bandwidth (``fetch.width`` or the issue width)."""
        return self.fetch.width if self.fetch.width is not None else self.issue_width

    def at_issue_width(self, issue_width: int) -> "MachineDescription":
        """This machine rescaled to another issue rate.

        Strips any ``-issue<N>`` suffix from the name before re-tagging,
        so ``paper_machine(4).at_issue_width(8)`` is exactly
        ``paper_machine(8)`` — the sweep derives its per-rate machines
        from one template this way.
        """
        base = self.name
        suffix = f"-issue{self.issue_width}"
        if base.endswith(suffix):
            base = base[: -len(suffix)]
        return replace(self, name=f"{base}-issue{issue_width}", issue_width=issue_width)

    # -- JSON round trip ----------------------------------------------

    def to_json_dict(self) -> Dict[str, object]:
        """A versioned, JSON-serializable dict of every field."""

        def cache_dict(cache: CacheModel) -> Dict[str, object]:
            return {
                "kind": cache.kind,
                "lines": cache.lines,
                "line_size": cache.line_size,
                "miss_penalty": cache.miss_penalty,
            }

        return {
            "version": MACHINE_JSON_VERSION,
            "name": self.name,
            "issue_width": self.issue_width,
            "latencies": {
                cls.value: lat
                for cls, lat in sorted(self.latencies.items(), key=lambda kv: kv[0].value)
            },
            "store_buffer_size": self.store_buffer_size,
            "branches_per_cycle": self.branches_per_cycle,
            "memory_ops_per_cycle": self.memory_ops_per_cycle,
            "pc_history_depth": self.pc_history_depth,
            "fetch": {
                "mode": self.fetch.mode,
                "width": self.fetch.width,
                "taken_branch_break": self.fetch.taken_branch_break,
            },
            "predictor": {
                "kind": self.predictor.kind,
                "mispredict_penalty": self.predictor.mispredict_penalty,
                "table_size": self.predictor.table_size,
            },
            "icache": cache_dict(self.icache),
            "dcache": cache_dict(self.dcache),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_json_dict(), indent=indent) + "\n"

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "MachineDescription":
        """Rebuild a machine from :meth:`to_json_dict` output.

        Every field is optional except ``version``, ``name`` and
        ``issue_width``; omitted fields take the paper defaults, so a
        minimal file only has to name what it changes.
        """
        version = data.get("version")
        if version != MACHINE_JSON_VERSION:
            raise ValueError(
                f"unsupported machine JSON version {version!r} "
                f"(this build reads version {MACHINE_JSON_VERSION})"
            )
        unknown = set(data) - {
            "version", "name", "issue_width", "latencies", "store_buffer_size",
            "branches_per_cycle", "memory_ops_per_cycle", "pc_history_depth",
            "fetch", "predictor", "icache", "dcache",
        }
        if unknown:
            raise ValueError(f"unknown machine JSON fields: {sorted(unknown)}")
        for req in ("name", "issue_width"):
            if req not in data:
                raise ValueError(f"machine JSON missing required field {req!r}")

        latencies = dict(PAPER_LATENCIES)
        for key, lat in (data.get("latencies") or {}).items():
            latencies[LatClass(key)] = int(lat)

        def cache_from(payload: Optional[Dict[str, object]]) -> CacheModel:
            if not payload:
                return PERFECT_CACHE
            return CacheModel(**payload)

        fetch = FetchModel(**data["fetch"]) if data.get("fetch") else IDEAL_FETCH
        predictor = (
            BranchPredictorModel(**data["predictor"])
            if data.get("predictor")
            else PERFECT_PREDICTOR
        )
        return cls(
            name=str(data["name"]),
            issue_width=int(data["issue_width"]),
            latencies=latencies,
            store_buffer_size=int(data.get("store_buffer_size", 8)),
            branches_per_cycle=data.get("branches_per_cycle"),
            memory_ops_per_cycle=data.get("memory_ops_per_cycle"),
            pc_history_depth=int(data.get("pc_history_depth", 32)),
            fetch=fetch,
            predictor=predictor,
            icache=cache_from(data.get("icache")),
            dcache=cache_from(data.get("dcache")),
        )

    @classmethod
    def from_json(cls, text: str) -> "MachineDescription":
        return cls.from_json_dict(json.loads(text))

    def __post_init__(self) -> None:
        if self.issue_width < 1:
            raise ValueError("issue width must be >= 1")
        if self.store_buffer_size < 1:
            raise ValueError("store buffer needs at least one entry")
        if self.branches_per_cycle is not None and self.branches_per_cycle < 1:
            raise ValueError("branches_per_cycle must be >= 1 (or None)")
        if self.memory_ops_per_cycle is not None and self.memory_ops_per_cycle < 1:
            raise ValueError("memory_ops_per_cycle must be >= 1 (or None)")
        missing = [cls for cls in LatClass if cls not in self.latencies]
        if missing:
            raise ValueError(f"latency table missing classes: {missing}")


def paper_machine(issue_width: int, store_buffer_size: int = 8) -> MachineDescription:
    """The paper's evaluation machine at a given issue rate (Section 5.1)."""
    return MachineDescription(
        name=f"paper-issue{issue_width}",
        issue_width=issue_width,
        store_buffer_size=store_buffer_size,
    )


#: The base machine of all speedup calculations: "The base machine ... has an
#: issue rate of 1 and supports the restricted percolation scheduling model"
#: (Section 5.2).
BASE_MACHINE = paper_machine(1)

#: The issue rates evaluated in Figures 4 and 5.
PAPER_ISSUE_RATES = (2, 4, 8)
