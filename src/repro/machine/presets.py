"""Named machine presets and machine-file loading for the CLI and tests.

Presets are *templates*: each factory returns the machine at issue rate
1, and consumers rescale with
:meth:`~repro.machine.description.MachineDescription.at_issue_width`
(the evaluation sweep does this per rate, exactly as it builds the paper
machine today).  ``paper`` is the default and is bit-identical to
:func:`~repro.machine.description.paper_machine`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict

from .description import (
    BranchPredictorModel,
    CacheModel,
    FetchModel,
    MachineDescription,
    paper_machine,
)

__all__ = ["MACHINE_PRESETS", "machine_preset", "load_machine_file"]


def _paper() -> MachineDescription:
    return paper_machine(1)


def _fetchbreak() -> MachineDescription:
    """Variable fetch bandwidth with a 1-cycle break on taken redirects."""
    return MachineDescription(
        name="fetchbreak-issue1",
        issue_width=1,
        fetch=FetchModel(mode="variable", taken_branch_break=1),
    )


def _btfn() -> MachineDescription:
    """Static backward-taken/forward-not-taken predictor, 3-cycle redirect."""
    return MachineDescription(
        name="btfn-issue1",
        issue_width=1,
        predictor=BranchPredictorModel(kind="btfn", mispredict_penalty=3),
    )


def _bimodal() -> MachineDescription:
    """256-entry bimodal predictor, 3-cycle redirect."""
    return MachineDescription(
        name="bimodal-issue1",
        issue_width=1,
        predictor=BranchPredictorModel(
            kind="bimodal", mispredict_penalty=3, table_size=256
        ),
    )


def _cache() -> MachineDescription:
    """Small direct-mapped I/D caches, perfect fetch and prediction."""
    return MachineDescription(
        name="cache-issue1",
        issue_width=1,
        icache=CacheModel(kind="direct", lines=64, line_size=4, miss_penalty=8),
        dcache=CacheModel(kind="direct", lines=64, line_size=4, miss_penalty=6),
    )


def _realistic() -> MachineDescription:
    """All three axes on: variable fetch + bimodal predictor + I/D caches."""
    return MachineDescription(
        name="realistic-issue1",
        issue_width=1,
        fetch=FetchModel(mode="variable", taken_branch_break=1),
        predictor=BranchPredictorModel(
            kind="bimodal", mispredict_penalty=3, table_size=256
        ),
        icache=CacheModel(kind="direct", lines=64, line_size=4, miss_penalty=8),
        dcache=CacheModel(kind="direct", lines=64, line_size=4, miss_penalty=6),
    )


#: Name -> factory for every named machine template (issue rate 1).
MACHINE_PRESETS: Dict[str, Callable[[], MachineDescription]] = {
    "paper": _paper,
    "fetchbreak": _fetchbreak,
    "btfn": _btfn,
    "bimodal": _bimodal,
    "cache": _cache,
    "realistic": _realistic,
}


def machine_preset(name: str, issue_width: int = 1) -> MachineDescription:
    """A preset machine by name, optionally rescaled to an issue rate."""
    try:
        factory = MACHINE_PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(MACHINE_PRESETS))
        raise ValueError(f"unknown machine preset {name!r} (known: {known})") from None
    machine = factory()
    if issue_width != machine.issue_width:
        machine = machine.at_issue_width(issue_width)
    return machine


def load_machine_file(path) -> MachineDescription:
    """Load a versioned machine JSON file (see ``MachineDescription.to_json``)."""
    text = Path(path).read_text(encoding="utf-8")
    try:
        return MachineDescription.from_json(text)
    except ValueError as exc:
        raise ValueError(f"{path}: {exc}") from None
