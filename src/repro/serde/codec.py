"""JSON codecs for programs, profiles and schedules.

Operand encoding piggybacks on JSON's own type system: a register is its
name string (``"r5"``/``"f3"``), an integer immediate is a JSON number
without a fraction, a float immediate one with (JSON keeps ``2`` and
``2.0`` distinct, which is exactly the int/float split the ISA makes).

A :class:`~repro.sched.schedule.ScheduledProgram` serializes its
instructions once, in a uid-keyed table shared by the source program's
blocks and the schedule's words — deserialization then rebuilds the
object-identity sharing the compiler established (a scheduled word holds
the *same* instruction object as the source block it came from).
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from typing import Dict, Iterable, List, Optional

from ..cfg.profile import ProfileData
from ..isa.instruction import Instruction
from ..isa.opcodes import MNEMONIC_TO_OPCODE
from ..isa.program import Block, Program
from ..isa.registers import Register, parse_register
from ..sched.schedule import ScheduledBlock, ScheduledProgram

#: Version tag of every serde payload.  Bump on any incompatible change
#: to the field layout; readers reject other versions outright.
SERDE_VERSION = 1


class SerdeError(ValueError):
    """Malformed, unknown-versioned or unsupported serde payload."""


def _envelope(kind: str) -> Dict[str, object]:
    return {"version": SERDE_VERSION, "kind": kind}


def check_envelope(data: Dict[str, object], kind: str, fields: Iterable[str]) -> None:
    """Reject wrong versions, wrong kinds and unknown fields."""
    if not isinstance(data, dict):
        raise SerdeError(f"expected a JSON object for {kind}, got {type(data).__name__}")
    version = data.get("version")
    if version != SERDE_VERSION:
        raise SerdeError(
            f"unsupported {kind} payload version {version!r} "
            f"(this build reads version {SERDE_VERSION})"
        )
    got_kind = data.get("kind")
    if got_kind != kind:
        raise SerdeError(f"expected kind {kind!r}, got {got_kind!r}")
    unknown = set(data) - {"version", "kind"} - set(fields)
    if unknown:
        raise SerdeError(f"unknown {kind} fields: {sorted(unknown)}")


# ----------------------------------------------------------------------
# Operands and instructions.
# ----------------------------------------------------------------------


def _operand_to_json(operand) -> object:
    if isinstance(operand, Register):
        return operand.name
    if isinstance(operand, (int, float)):
        return operand
    raise SerdeError(f"unserializable operand {operand!r}")


def _operand_from_json(value) -> object:
    if isinstance(value, str):
        try:
            return parse_register(value)
        except ValueError as exc:
            raise SerdeError(str(exc)) from exc
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SerdeError(f"bad operand {value!r}")
    return value


#: Instruction fields that default to falsy and are omitted when unset,
#: keeping the common case (a plain ALU op) compact.
_INSTR_FIELDS = (
    "uid", "op", "dest", "srcs", "target", "spec", "home_block",
    "origin", "sentinel_for", "comment", "mem_region", "boost_branches",
)


def instruction_to_json_dict(instr: Instruction) -> Dict[str, object]:
    data: Dict[str, object] = {
        "uid": instr.uid,
        "op": instr.info.mnemonic,
        "srcs": [_operand_to_json(s) for s in instr.srcs],
    }
    if instr.dest is not None:
        data["dest"] = instr.dest.name
    if instr.target is not None:
        data["target"] = instr.target
    if instr.spec:
        data["spec"] = True
    if instr.home_block is not None:
        data["home_block"] = instr.home_block
    if instr.origin is not None:
        data["origin"] = instr.origin
    if instr.sentinel_for:
        data["sentinel_for"] = list(instr.sentinel_for)
    if instr.comment:
        data["comment"] = instr.comment
    if instr.mem_region is not None:
        data["mem_region"] = instr.mem_region
    if instr.boost_branches:
        data["boost_branches"] = list(instr.boost_branches)
    return data


def instruction_from_json_dict(data: Dict[str, object]) -> Instruction:
    if not isinstance(data, dict):
        raise SerdeError(f"expected a JSON object for instruction, got {data!r}")
    unknown = set(data) - set(_INSTR_FIELDS)
    if unknown:
        raise SerdeError(f"unknown instruction fields: {sorted(unknown)}")
    mnemonic = data.get("op")
    op = MNEMONIC_TO_OPCODE.get(mnemonic)
    if op is None:
        raise SerdeError(f"unknown mnemonic {mnemonic!r}")
    dest = data.get("dest")
    try:
        instr = Instruction(
            op,
            dest=parse_register(dest) if dest is not None else None,
            srcs=tuple(_operand_from_json(s) for s in data.get("srcs", [])),
            target=data.get("target"),
            uid=data.get("uid"),
            spec=bool(data.get("spec", False)),
            home_block=data.get("home_block"),
            origin=data.get("origin"),
            sentinel_for=tuple(data.get("sentinel_for", ())),
            comment=data.get("comment", ""),
            mem_region=data.get("mem_region"),
        )
    except ValueError as exc:
        raise SerdeError(str(exc)) from exc
    boost = data.get("boost_branches")
    if boost:
        instr.boost_branches = tuple(boost)
    return instr


# ----------------------------------------------------------------------
# Programs.
# ----------------------------------------------------------------------

_PROGRAM_FIELDS = ("blocks", "uid_watermark")


def program_to_json_dict(program: Program) -> Dict[str, object]:
    data = _envelope("program")
    data["uid_watermark"] = program.uid_watermark()
    data["blocks"] = [
        {
            "label": block.label,
            "instrs": [instruction_to_json_dict(i) for i in block.instrs],
        }
        for block in program.blocks
    ]
    return data


def program_from_json_dict(data: Dict[str, object]) -> Program:
    check_envelope(data, "program", _PROGRAM_FIELDS)
    blocks: List[Block] = []
    for payload in data.get("blocks", []):
        unknown = set(payload) - {"label", "instrs"}
        if unknown:
            raise SerdeError(f"unknown block fields: {sorted(unknown)}")
        blocks.append(
            Block(
                payload["label"],
                [instruction_from_json_dict(i) for i in payload.get("instrs", [])],
            )
        )
    watermark = data.get("uid_watermark")
    if not isinstance(watermark, int):
        raise SerdeError(f"bad uid_watermark {watermark!r}")
    return Program.from_parts(blocks, watermark)


def program_to_json(program: Program, indent: Optional[int] = None) -> str:
    return json.dumps(program_to_json_dict(program), indent=indent, sort_keys=True)


def program_from_json(text: str) -> Program:
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerdeError(f"bad program JSON: {exc}") from exc
    return program_from_json_dict(data)


# ----------------------------------------------------------------------
# Profiles.
# ----------------------------------------------------------------------

_PROFILE_FIELDS = ("block_visits", "branch_executed", "branch_taken", "edges")


def profile_to_json_dict(profile: ProfileData) -> Dict[str, object]:
    data = _envelope("profile")
    data["block_visits"] = dict(profile.block_visits)
    data["branch_executed"] = {str(uid): n for uid, n in profile.branch_executed.items()}
    data["branch_taken"] = {str(uid): n for uid, n in profile.branch_taken.items()}
    data["edges"] = [[src, dst, n] for (src, dst), n in profile.edges.items()]
    return data


def profile_from_json_dict(data: Dict[str, object]) -> ProfileData:
    check_envelope(data, "profile", _PROFILE_FIELDS)
    try:
        return ProfileData(
            block_visits=Counter(data.get("block_visits", {})),
            branch_executed=Counter(
                {int(uid): n for uid, n in data.get("branch_executed", {}).items()}
            ),
            branch_taken=Counter(
                {int(uid): n for uid, n in data.get("branch_taken", {}).items()}
            ),
            edges=Counter(
                {(src, dst): n for src, dst, n in data.get("edges", [])}
            ),
        )
    except (TypeError, ValueError) as exc:
        raise SerdeError(f"bad profile payload: {exc}") from exc


# ----------------------------------------------------------------------
# Schedules.
# ----------------------------------------------------------------------

_SCHEDULE_FIELDS = ("policy_name", "machine_name", "instructions", "source", "blocks")


def schedule_to_json_dict(scheduled: ScheduledProgram) -> Dict[str, object]:
    """Serialize a scheduled program, sharing instructions by uid.

    The table covers the union of the source program's instructions and
    the schedule's words; two distinct objects claiming one uid with
    different content would corrupt the rebuild, so that is rejected
    (it cannot happen for a :class:`CompilationResult` produced by the
    pipeline, where words reference the source program's objects).
    """
    table: Dict[int, Dict[str, object]] = {}

    def register(instr: Instruction) -> int:
        payload = instruction_to_json_dict(instr)
        uid = instr.uid
        if uid is None:
            raise SerdeError(f"cannot serialize uid-less instruction {instr!r}")
        existing = table.get(uid)
        if existing is None:
            table[uid] = payload
        elif existing != payload:
            raise SerdeError(f"uid {uid} maps to two different instructions")
        return uid

    data = _envelope("scheduled_program")
    data["policy_name"] = scheduled.policy_name
    data["machine_name"] = scheduled.machine_name
    data["source"] = {
        "uid_watermark": scheduled.source.uid_watermark(),
        "blocks": [
            {"label": blk.label, "uids": [register(i) for i in blk.instrs]}
            for blk in scheduled.source.blocks
        ],
    }
    data["blocks"] = [
        {
            "label": blk.label,
            "falls_through": blk.falls_through,
            "words": [[register(i) for i in word] for word in blk.words],
        }
        for blk in scheduled.blocks
    ]
    data["instructions"] = {str(uid): payload for uid, payload in sorted(table.items())}
    return data


def schedule_from_json_dict(data: Dict[str, object]) -> ScheduledProgram:
    check_envelope(data, "scheduled_program", _SCHEDULE_FIELDS)
    table: Dict[int, Instruction] = {}
    for uid_text, payload in (data.get("instructions") or {}).items():
        instr = instruction_from_json_dict(payload)
        if instr.uid != int(uid_text):
            raise SerdeError(
                f"instruction table key {uid_text} disagrees with uid {instr.uid}"
            )
        table[instr.uid] = instr

    def resolve(uid) -> Instruction:
        if uid not in table:
            raise SerdeError(f"schedule references unknown uid {uid}")
        return table[uid]

    source_payload = data.get("source") or {}
    unknown = set(source_payload) - {"uid_watermark", "blocks"}
    if unknown:
        raise SerdeError(f"unknown source fields: {sorted(unknown)}")
    source = Program.from_parts(
        [
            Block(blk["label"], [resolve(uid) for uid in blk.get("uids", [])])
            for blk in source_payload.get("blocks", [])
        ],
        int(source_payload.get("uid_watermark", 0)),
    )
    blocks: List[ScheduledBlock] = []
    for payload in data.get("blocks", []):
        unknown = set(payload) - {"label", "falls_through", "words"}
        if unknown:
            raise SerdeError(f"unknown scheduled-block fields: {sorted(unknown)}")
        blocks.append(
            ScheduledBlock(
                label=payload["label"],
                words=[[resolve(uid) for uid in word] for word in payload.get("words", [])],
                falls_through=bool(payload["falls_through"]),
            )
        )
    return ScheduledProgram(
        blocks=blocks,
        source=source,
        policy_name=data.get("policy_name", ""),
        machine_name=data.get("machine_name", ""),
    )


def schedule_to_json(scheduled: ScheduledProgram, indent: Optional[int] = None) -> str:
    return json.dumps(schedule_to_json_dict(scheduled), indent=indent, sort_keys=True)


def schedule_from_json(text: str) -> ScheduledProgram:
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerdeError(f"bad schedule JSON: {exc}") from exc
    return schedule_from_json_dict(data)


def schedule_digest(scheduled: ScheduledProgram) -> str:
    """Content digest of a schedule: sha256 over its canonical JSON.

    Two compilations of the same inputs produce the same digest (uids
    included — the pipeline allocates them deterministically), so the
    digest doubles as a response-identity check for the service's
    coalescing path.
    """
    text = schedule_to_json(scheduled)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
