"""JSON codec for sweep configurations and results.

A :class:`~repro.eval.harness.SweepResult` crosses the service boundary
whole — cells, base cycles, stage timings, counters — so remote clients
can drive the same figures/tables code a local sweep feeds.  Policies
serialize by name and resolve against the four standard models; a custom
:class:`~repro.deps.reduction.SpeculationPolicy` has no stable wire
identity and is rejected rather than silently renamed.  Runtime-only
knobs (jobs, cache directory, weights, trace flags) deliberately do not
serialize: they describe *how* a sweep ran, not *what* it measured, and
the receiving side must not replay them.
"""

from __future__ import annotations

from typing import Dict

from ..deps.reduction import GENERAL, RESTRICTED, SENTINEL, SENTINEL_STORE
from ..eval.harness import CellResult, SweepConfig, SweepResult
from ..machine.description import MachineDescription
from .codec import SERDE_VERSION, SerdeError, check_envelope, _envelope

#: Name -> policy for the four standard scheduling models.
POLICY_REGISTRY = {
    policy.name: policy
    for policy in (RESTRICTED, GENERAL, SENTINEL, SENTINEL_STORE)
}

_CONFIG_FIELDS = (
    "benchmarks", "issue_rates", "policies", "unroll_factor", "seed",
    "scale", "store_buffer_size", "recovery", "max_steps", "simulate",
    "machine",
)

_CELL_FIELDS = (
    "benchmark", "numeric", "policy", "issue_rate", "cycles", "speedup",
    "speculative", "checks_inserted", "confirms_inserted", "schedule_words",
)

_RESULT_FIELDS = (
    "config", "base_cycles", "cells", "timings", "pass_timings",
    "interp_steps", "wall_seconds", "effective_jobs", "sim_lanes",
    "sim_ok", "sim_counters", "sched_counters", "cache_counters",
)


def _config_to_json_dict(config: SweepConfig) -> Dict[str, object]:
    for policy in config.policies:
        registered = POLICY_REGISTRY.get(policy.name)
        if registered is not policy:
            raise SerdeError(
                f"policy {policy.name!r} is not one of the standard models "
                "and cannot be serialized by name"
            )
    if config.weights is not None:
        raise SerdeError("sweep configs with tuned weights do not serialize")
    return {
        "benchmarks": list(config.benchmarks),
        "issue_rates": list(config.issue_rates),
        "policies": [policy.name for policy in config.policies],
        "unroll_factor": config.unroll_factor,
        "seed": config.seed,
        "scale": config.scale,
        "store_buffer_size": config.store_buffer_size,
        "recovery": config.recovery,
        "max_steps": config.max_steps,
        "simulate": config.simulate,
        "machine": config.machine.to_json_dict() if config.machine is not None else None,
    }


def _config_from_json_dict(data: Dict[str, object]) -> SweepConfig:
    unknown = set(data) - set(_CONFIG_FIELDS)
    if unknown:
        raise SerdeError(f"unknown sweep config fields: {sorted(unknown)}")
    policies = []
    for name in data.get("policies", []):
        if name not in POLICY_REGISTRY:
            raise SerdeError(f"unknown policy name {name!r}")
        policies.append(POLICY_REGISTRY[name])
    machine = data.get("machine")
    try:
        return SweepConfig(
            benchmarks=tuple(data.get("benchmarks", ())),
            issue_rates=tuple(data.get("issue_rates", (2, 4, 8))),
            policies=tuple(policies) if policies else SweepConfig().policies,
            unroll_factor=int(data.get("unroll_factor", 4)),
            seed=int(data.get("seed", 0)),
            scale=float(data.get("scale", 1.0)),
            store_buffer_size=int(data.get("store_buffer_size", 8)),
            recovery=bool(data.get("recovery", False)),
            max_steps=int(data.get("max_steps", 10_000_000)),
            simulate=int(data.get("simulate", 0)),
            machine=MachineDescription.from_json_dict(machine) if machine else None,
        )
    except (TypeError, ValueError) as exc:
        if isinstance(exc, SerdeError):
            raise
        raise SerdeError(f"bad sweep config: {exc}") from exc


def sweep_result_to_json_dict(sweep: SweepResult) -> Dict[str, object]:
    data = _envelope("sweep_result")
    data["config"] = _config_to_json_dict(sweep.config)
    data["base_cycles"] = dict(sweep.base_cycles)
    data["cells"] = [
        {field: getattr(cell, field) for field in _CELL_FIELDS}
        for key in sorted(sweep.cells)
        for cell in (sweep.cells[key],)
    ]
    data["timings"] = sweep.timings
    data["pass_timings"] = sweep.pass_timings
    data["interp_steps"] = sweep.interp_steps
    data["wall_seconds"] = sweep.wall_seconds
    data["effective_jobs"] = sweep.effective_jobs
    data["sim_lanes"] = sweep.sim_lanes
    data["sim_ok"] = sweep.sim_ok
    data["sim_counters"] = sweep.sim_counters
    data["sched_counters"] = sweep.sched_counters
    data["cache_counters"] = sweep.cache_counters
    return data


def sweep_result_from_json_dict(data: Dict[str, object]) -> SweepResult:
    check_envelope(data, "sweep_result", _RESULT_FIELDS)
    sweep = SweepResult(config=_config_from_json_dict(data.get("config", {})))
    sweep.base_cycles = dict(data.get("base_cycles", {}))
    for payload in data.get("cells", []):
        unknown = set(payload) - set(_CELL_FIELDS)
        if unknown:
            raise SerdeError(f"unknown cell fields: {sorted(unknown)}")
        try:
            cell = CellResult(**payload)
        except TypeError as exc:
            raise SerdeError(f"bad cell payload: {exc}") from exc
        sweep.cells[(cell.benchmark, cell.policy, cell.issue_rate)] = cell
    sweep.timings = data.get("timings", {})
    sweep.pass_timings = data.get("pass_timings", {})
    sweep.interp_steps = data.get("interp_steps", {})
    sweep.wall_seconds = float(data.get("wall_seconds", 0.0))
    sweep.effective_jobs = int(data.get("effective_jobs", 1))
    sweep.sim_lanes = int(data.get("sim_lanes", 0))
    sweep.sim_ok = int(data.get("sim_ok", 0))
    sweep.sim_counters = data.get("sim_counters", {})
    sweep.sched_counters = data.get("sched_counters", {})
    sweep.cache_counters = data.get("cache_counters", {})
    return sweep


__all__ = [
    "POLICY_REGISTRY",
    "SERDE_VERSION",
    "sweep_result_from_json_dict",
    "sweep_result_to_json_dict",
]
