"""Versioned JSON serialization of the compiler's first-class objects.

The service layer (:mod:`repro.service`) ships programs, schedules and
sweep results across process and machine boundaries, so they need a
stable wire format with the same hygiene the machine JSON established in
:mod:`repro.machine.description`: every payload carries a ``version``
and a ``kind``, unknown fields and unsupported versions are rejected
loudly (:class:`SerdeError`), and omissions never silently default to
something that changes semantics.

The format is *uid-faithful*: instruction uids, home blocks, origin
links and sentinel sets survive the round trip exactly, so a
deserialized program compiles to the same pinned golden digests as the
original and a deserialized schedule executes bit-identically on every
engine.  (The cache's group-bundle pickles seeded the object coverage;
JSON replaces pickle at the service boundary because clients cannot be
handed a pickle.)
"""

from .codec import (
    SERDE_VERSION,
    SerdeError,
    instruction_from_json_dict,
    instruction_to_json_dict,
    profile_from_json_dict,
    profile_to_json_dict,
    program_from_json,
    program_from_json_dict,
    program_to_json,
    program_to_json_dict,
    schedule_digest,
    schedule_from_json,
    schedule_from_json_dict,
    schedule_to_json,
    schedule_to_json_dict,
)
from .sweep import (
    POLICY_REGISTRY,
    sweep_result_from_json_dict,
    sweep_result_to_json_dict,
)

__all__ = [
    "SERDE_VERSION",
    "SerdeError",
    "POLICY_REGISTRY",
    "instruction_from_json_dict",
    "instruction_to_json_dict",
    "profile_from_json_dict",
    "profile_to_json_dict",
    "program_from_json",
    "program_from_json_dict",
    "program_to_json",
    "program_to_json_dict",
    "schedule_digest",
    "schedule_from_json",
    "schedule_from_json_dict",
    "schedule_to_json",
    "schedule_to_json_dict",
    "sweep_result_from_json_dict",
    "sweep_result_to_json_dict",
]
